(* Deterministic discrete-event simulator.  Simulated threads are
   effect-handler coroutines; each carries a virtual clock and yields
   to the central event heap when it consumes time (Advance) or blocks
   on a one-shot flag (Wait).  This is the substitute for the paper's
   64-core machine: the TLS runtime and the transformed programs run
   for real, but time is virtual, so any number of "CPUs" can be
   simulated on a single host core, reproducibly. *)

type ivar = {
  mutable value : int option;
  mutable waiters : (int, unit) Effect.Deep.continuation list;
}
(* One-shot integer flag: models the paper's volatile sync_status /
   valid_status variables, which transition exactly once from NULL. *)

type task =
  | Start of (unit -> unit)
  | Resume_unit of (unit, unit) Effect.Deep.continuation
  | Resume_int of (int, unit) Effect.Deep.continuation * int

type trace_event = Trace_spawn | Trace_block | Trace_wake of int

type t = {
  heap : task Heap.t;
  mutable clock : float;
  mutable blocked : int;
  mutable spawned : int;
  mutable tracer : (float -> trace_event -> unit) option;
  (* Observability hook: scheduler-level events (thread spawn, block on
     a flag, flag set waking N waiters) stamped with the virtual time.
     Installed by the TLS evaluator when tracing is on. *)
}

type _ Effect.t +=
  | Advance : (t * float) -> unit Effect.t
  | Wait : (t * ivar) -> int Effect.t

exception Deadlock of int (* number of threads still blocked *)

let create () =
  { heap = Heap.create (); clock = 0.0; blocked = 0; spawned = 0; tracer = None }

let now e = e.clock

let set_tracer e tracer = e.tracer <- tracer

let trace e ev = match e.tracer with Some f -> f e.clock ev | None -> ()

let new_ivar () = { value = None; waiters = [] }

let ivar_peek iv = iv.value

(* Set a flag; wakes all waiters at the current virtual time.  Must be
   called from inside the simulation (or before it starts). *)
let ivar_set e iv v =
  match iv.value with
  | Some _ -> invalid_arg "Engine.ivar_set: already set"
  | None ->
    iv.value <- Some v;
    trace e (Trace_wake (List.length iv.waiters));
    List.iter
      (fun k ->
        e.blocked <- e.blocked - 1;
        Heap.push e.heap e.clock (Resume_int (k, v)))
      (List.rev iv.waiters);
    iv.waiters <- []

(* Schedule a new simulated thread at the current virtual time. *)
let spawn e f =
  e.spawned <- e.spawned + 1;
  trace e Trace_spawn;
  Heap.push e.heap e.clock (Start f)

(* --- Operations usable only inside a simulated thread ------------- *)

let advance e dt =
  if dt < 0.0 then invalid_arg "Engine.advance: negative time";
  Effect.perform (Advance (e, dt))

(* Block until the flag is set; returns its value.  If already set,
   continues immediately without consuming virtual time. *)
let wait e iv =
  match iv.value with Some v -> v | None -> Effect.perform (Wait (e, iv))

(* --- Scheduler ----------------------------------------------------- *)

let exec _e f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun ex -> raise ex);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Advance (e', dt) ->
            Some
              (fun (k : (a, unit) continuation) ->
                Heap.push e'.heap (e'.clock +. dt) (Resume_unit k))
          | Wait (e', iv) ->
            Some
              (fun (k : (a, unit) continuation) ->
                match iv.value with
                | Some v -> continue k v
                | None ->
                  trace e' Trace_block;
                  e'.blocked <- e'.blocked + 1;
                  iv.waiters <- k :: iv.waiters)
          | _ -> None);
    }

(* Run [main] plus everything it spawns to completion; returns the
   final virtual time.  Raises [Deadlock] if threads remain blocked on
   flags that nobody will ever set. *)
let run e main =
  spawn e main;
  let rec loop () =
    match Heap.pop e.heap with
    | None -> ()
    | Some (t, task) ->
      e.clock <- t;
      (match task with
      | Start f -> exec e f
      | Resume_unit k -> Effect.Deep.continue k ()
      | Resume_int (k, v) -> Effect.Deep.continue k v);
      loop ()
  in
  loop ();
  if e.blocked > 0 then raise (Deadlock e.blocked);
  e.clock
