(** Deterministic discrete-event simulator.  Simulated threads are
    effect-handler coroutines; each carries a virtual clock and yields
    to a central event heap when it consumes time ({!advance}) or
    blocks on a one-shot flag ({!wait}).

    This is the substitute for the paper's 64-core machine: the TLS
    runtime and the transformed programs execute for real, but time is
    virtual, so any number of "CPUs" can be simulated on a single host
    core, reproducibly. *)

type ivar
(** One-shot integer flag: models the paper's volatile
    [sync_status] / [valid_status] variables, which transition exactly
    once from NULL. *)

type t

exception Deadlock of int
(** Raised by {!run} when threads remain blocked on flags nobody will
    set; carries the number of stuck threads. *)

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

(** Scheduler-level observability: thread spawned, thread blocked on a
    flag, flag set waking [n] waiters. *)
type trace_event = Trace_spawn | Trace_block | Trace_wake of int

val set_tracer : t -> (float -> trace_event -> unit) option -> unit
(** Install a hook receiving each {!trace_event} stamped with the
    virtual time; [None] (the default) disables it. *)

val new_ivar : unit -> ivar
val ivar_peek : ivar -> int option

val ivar_set : t -> ivar -> int -> unit
(** Set a flag, waking all waiters at the current virtual time.
    @raise Invalid_argument if already set. *)

val spawn : t -> (unit -> unit) -> unit
(** Schedule a new simulated thread at the current virtual time. *)

val advance : t -> float -> unit
(** Consume virtual time; only valid inside a simulated thread. *)

val wait : t -> ivar -> int
(** Block until the flag is set and return its value; continues
    immediately (without consuming time) if already set. *)

val run : t -> (unit -> unit) -> float
(** Run [main] plus everything it spawns to completion; returns the
    final virtual time.  @raise Deadlock if blocked threads remain. *)
