(* SplitMix64: tiny, fast, deterministic.  Used for rollback injection
   (paper Fig. 11) and property-test data; keeping our own generator
   means simulation results never depend on the OCaml stdlib Random
   implementation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform float in [0, 1). *)
let next_float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* Uniform int in [0, bound).  The [land max_int] matters: Int64.to_int
   keeps the low 63 bits, so bit 62 of the shifted value would otherwise
   land in the sign bit and make half the draws negative. *)
let next_int t bound =
  if bound <= 0 then invalid_arg "Rng.next_int";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  r mod bound
