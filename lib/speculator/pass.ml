(* The LLVM-style speculator transformation pass (paper §IV-C..H).

   For every function annotated with fork/join points (plus transitive
   internal callees), the pass:

   1. demotes cross-block SSA registers to allocas (reg2mem), so that
      block splitting and restore edges cannot break SSA;
   2. splits basic blocks at fork/join/barrier annotations, internal
      calls (enter points), unsafe external calls (terminate points),
      pointer/integer casts (cast barriers) and loop headers (check
      points), numbering every synchronization block;
   3. clones the function into a ".spec" version with two extra
      parameters (counter, rank), redirects its loads/stores through
      the TLS runtime, and redirects bottom-frame stack variables to
      the parent's addresses (pick_stackaddr);
   4. adds fork surgery (MUTLS_get_CPU, the ranks array, fork-time
      local saves, proxy call), join surgery (validate_local,
      synchronize, the synchronization table) and, in the speculative
      version, the speculation table plus save/commit blocks at every
      synchronization point;
   5. generates the ".stub" and ".proxy" helper functions;
   6. re-promotes the demoted allocas (mem2reg), which recreates phi
      nodes through all the new edges — exactly the paper's "phi nodes
      are inserted at the beginning of the latter block".

   The non-speculative and speculative versions share block names, so
   a synchronization counter saved by one resumes the other. *)

open Mutls_mir
open Mutls_mir.Ir
module IntMap = Reg2mem.IntMap
module ISet = Set.Make (Int)

exception Pass_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Pass_error s)) fmt

type options = {
  max_locals : int;
  safe_externs : string list; (* pure externs that never stop speculation *)
}

let default_safe = Store_free.default_safe

let default_options = { max_locals = 256; safe_externs = default_safe }

(* ------------------------------------------------------------------ *)
(* Prepared set                                                        *)
(* ------------------------------------------------------------------ *)

let has_annotations (f : func) =
  List.exists
    (fun b ->
      List.exists
        (fun i ->
          match i.kind with
          | Call (n, _) -> is_source_intrinsic n
          | _ -> false)
        b.insts)
    f.blocks

let internal_callees (m : modul) (f : func) =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun i ->
          match i.kind with
          | Call (n, _) when find_func m n <> None -> Some n
          | _ -> None)
        b.insts)
    f.blocks

let prepared_set (m : modul) =
  let set = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem set name) then begin
      Hashtbl.replace set name ();
      match find_func m name with
      | Some f -> List.iter visit (internal_callees m f)
      | None -> ()
    end
  in
  List.iter (fun f -> if has_annotations f then visit f.fname) m.funcs;
  set

(* ------------------------------------------------------------------ *)
(* Block splitting                                                     *)
(* ------------------------------------------------------------------ *)

(* Rename phi-incoming labels in successors when a block is split and
   its terminator migrates to the tail block. *)
let relabel_phis (f : func) ~from_label ~to_label ~succs =
  List.iter
    (fun l ->
      let b = find_block_exn f l in
      List.iter
        (fun p ->
          p.incoming <-
            List.map
              (fun (pl, v) -> if pl = from_label then (to_label, v) else (pl, v))
              p.incoming)
        b.phis)
    succs

type roles = {
  mutable r_check : bool;
  mutable r_terminate : bool;
  mutable r_enter : bool;
  mutable r_return : bool;
  mutable r_barrier : bool;
  mutable r_cast : bool;
  mutable r_join : int option; (* join point id: speculative entry here *)
}

let no_roles () =
  { r_check = false; r_terminate = false; r_enter = false; r_return = false;
    r_barrier = false; r_cast = false; r_join = None }

let is_sync (r : roles) =
  r.r_check || r.r_terminate || r.r_enter || r.r_return || r.r_barrier || r.r_cast

type fctx = {
  f : func;
  opts : options;
  mutable label_counter : int;
  roles : (string, roles) Hashtbl.t;
  mutable fork_sites : (string * int * int) list; (* block, point, model *)
}

let fresh_label fc stem =
  let n = fc.label_counter in
  fc.label_counter <- n + 1;
  Printf.sprintf "%s.m%d" stem n

let get_roles fc name =
  match Hashtbl.find_opt fc.roles name with
  | Some r -> r
  | None ->
    let r = no_roles () in
    Hashtbl.replace fc.roles name r;
    r

(* Ensure the entry block contains only allocas followed by a branch,
   so it can never become a resume target. *)
let isolate_entry fc =
  let f = fc.f in
  let entry = entry_block f in
  let allocas, rest =
    List.partition (fun i -> match i.kind with Alloca _ -> true | _ -> false)
      entry.insts
  in
  let body_name = fresh_label fc (entry.bname ^ ".body") in
  let body =
    { bname = body_name; phis = []; insts = rest; term = entry.term }
  in
  relabel_phis f ~from_label:entry.bname ~to_label:body_name
    ~succs:(term_succs entry.term);
  entry.insts <- allocas;
  entry.term <- Br body_name;
  (* insert body right after entry *)
  match f.blocks with
  | e :: tl -> f.blocks <- e :: body :: tl
  | [] -> assert false

(* Where must a block be cut?  [cut_before i] starts a new block at
   instruction [i]; [cut_after i] ends the block right after it. *)
let classify fc (m : modul) i =
  match i.kind with
  | Call (n, _) when n = fork_intrinsic -> (true, true)
  | Call (n, _) when n = join_intrinsic -> (false, true)
  | Call (n, _) when n = barrier_intrinsic -> (true, false)
  | Call (n, _) when is_runtime_call n -> (false, false)
  | Call (n, _) when find_func m n <> None -> (true, true) (* enter point *)
  | Call (n, _) when List.mem n fc.opts.safe_externs -> (false, false)
  | Call (_, _) -> (true, true) (* unsafe external: terminate point *)
  | Cast (Ptrtoint, _, _, _) | Cast (Inttoptr, _, _, _) -> (true, false)
  | _ -> (false, false)

let role_of_leader fc (m : modul) (i : instr) r =
  match i.kind with
  | Call (n, _) when n = barrier_intrinsic -> r.r_barrier <- true
  | Call (n, _) when is_source_intrinsic n -> ()
  | Call (n, _) when find_func m n <> None -> r.r_enter <- true
  | Call (n, _) when (not (is_runtime_call n)) && not (List.mem n fc.opts.safe_externs)
    -> r.r_terminate <- true
  | Cast (Ptrtoint, _, _, _) | Cast (Inttoptr, _, _, _) -> r.r_cast <- true
  | _ -> ()

(* Split every block of [f] at annotation/call/cast boundaries and
   record block roles.  Must run before demotion (it may create new
   cross-block values, which demotion then handles). *)
let split_blocks fc (m : modul) =
  let f = fc.f in
  let rec process (b : block) acc_blocks =
    (* whatever leads this block determines its role — including tails
       produced by earlier cuts *)
    (match b.insts with
    | leader :: _ -> role_of_leader fc m leader (get_roles fc b.bname)
    | [] -> ());
    (* find the first cut position *)
    let rec find_cut idx = function
      | [] -> None
      | i :: rest ->
        let before, after = classify fc m i in
        if before && idx > 0 then Some (idx, `Before)
        else if after then Some (idx + 1, `After i)
        else find_cut (idx + 1) rest
    in
    match find_cut 0 b.insts with
    | None -> b :: acc_blocks
    | Some (pos, kind) ->
      let hd = List.filteri (fun k _ -> k < pos) b.insts in
      let tl = List.filteri (fun k _ -> k >= pos) b.insts in
      let tail_name = fresh_label fc (b.bname ^ ".s") in
      let tail = { bname = tail_name; phis = []; insts = tl; term = b.term } in
      relabel_phis f ~from_label:b.bname ~to_label:tail_name
        ~succs:(term_succs b.term);
      b.insts <- hd;
      b.term <- Br tail_name;
      (* roles *)
      (match kind with
      | `Before -> (
        match tl with
        | leader :: _ -> role_of_leader fc m leader (get_roles fc tail_name)
        | [] -> ())
      | `After i -> (
        match i.kind with
        | Call (n, args) when n = join_intrinsic -> (
          match args with
          | [ Const (Cint (p, _)) ] ->
            (get_roles fc tail_name).r_join <- Some (Int64.to_int p)
          | _ -> fail "%s: join point id must be a constant" f.fname)
        | Call (n, _) when n = fork_intrinsic ->
          (* the tail block will be processed again; the fork site is
             the block that now ends with the intrinsic *)
          ()
        | _ -> ()));
      process tail (b :: acc_blocks)
  in
  (* leaders of original blocks may also carry roles (e.g. a block that
     already begins with a call) *)
  List.iter
    (fun b ->
      match b.insts with
      | leader :: _ ->
        let before, _ = classify fc m leader in
        if before then role_of_leader fc m leader (get_roles fc b.bname)
      | [] -> ())
    f.blocks;
  let out = List.fold_left (fun acc b -> process b acc) [] f.blocks in
  f.blocks <- List.rev out;
  (* return-point roles *)
  List.iter
    (fun b ->
      match b.term with
      | Ret _ -> (get_roles fc b.bname).r_return <- true
      | _ -> ())
    f.blocks

(* Mark loop headers as check points.  Polling every iteration of a
   tiny leaf loop would cost more than the work it guards, so — like
   production TLS compilers — we only poll loops whose body contains a
   real call (not an inlineable safe extern) or a nested loop; leaf
   compute loops are polled from their enclosing loop, which bounds the
   synchronization latency to one outer iteration. *)
let mark_loop_headers fc (m : modul) =
  let f = fc.f in
  let cfg = Cfg.of_func f in
  let n = Cfg.nblocks cfg in
  let color = Array.make n 0 in
  let back_edges = ref [] in
  (* 0 = white, 1 = on stack, 2 = done *)
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if color.(v) = 1 then back_edges := (u, v) :: !back_edges
        else if color.(v) = 0 then dfs v)
      cfg.Cfg.succs.(u);
    color.(u) <- 2
  in
  if n > 0 then dfs 0;
  (* natural loop body of each back edge u -> h *)
  let headers = Hashtbl.create 8 in
  List.iter
    (fun (u, h) ->
      let body =
        match Hashtbl.find_opt headers h with
        | Some b -> b
        | None ->
          let b = Hashtbl.create 8 in
          Hashtbl.replace b h ();
          Hashtbl.replace headers h b;
          b
      in
      let rec up x =
        if not (Hashtbl.mem body x) then begin
          Hashtbl.replace body x ();
          List.iter up cfg.Cfg.preds.(x)
        end
      in
      up u)
    !back_edges;
  let has_real_call bi =
    List.exists
      (fun i ->
        match i.kind with
        | Call (name, _) ->
          (not (is_runtime_call name))
          && (not (is_source_intrinsic name))
          && not (List.mem name fc.opts.safe_externs)
          && (find_func m name <> None || not (List.mem name fc.opts.safe_externs))
        | _ -> false)
      cfg.Cfg.blocks.(bi).insts
  in
  Hashtbl.iter
    (fun h body ->
      let contains_call = ref false in
      let contains_inner = ref false in
      Hashtbl.iter
        (fun bi () ->
          if bi <> h && Hashtbl.mem headers bi then contains_inner := true;
          if has_real_call bi then contains_call := true)
        body;
      if !contains_call || !contains_inner then
        (get_roles fc cfg.Cfg.blocks.(h).bname).r_check <- true)
    headers

(* ------------------------------------------------------------------ *)
(* Liveness of demoted allocas                                          *)
(* ------------------------------------------------------------------ *)

(* Upward-exposed-load analysis over the demoted alloca slots: a slot
   is live-in at a block if some path from the block top reaches a load
   of it before any store to it. *)
let alloca_liveness (f : func) (slot_regs : ISet.t) =
  let cfg = Cfg.of_func f in
  let n = Cfg.nblocks cfg in
  let gen = Array.make n ISet.empty in
  let kill = Array.make n ISet.empty in
  Array.iteri
    (fun bi b ->
      let stored = ref ISet.empty in
      List.iter
        (fun i ->
          match i.kind with
          | Load (_, Reg a) when ISet.mem a slot_regs ->
            if not (ISet.mem a !stored) then gen.(bi) <- ISet.add a gen.(bi)
          | Store (_, _, Reg a) when ISet.mem a slot_regs ->
            stored := ISet.add a !stored
          | _ -> ())
        b.insts;
      kill.(bi) <- !stored)
    cfg.Cfg.blocks;
  let live_in = Array.make n ISet.empty in
  let live_out = Array.make n ISet.empty in
  let changed = ref true in
  let order = Cfg.postorder cfg in
  while !changed do
    changed := false;
    List.iter
      (fun bi ->
        let out =
          List.fold_left
            (fun acc si -> ISet.union acc live_in.(si))
            ISet.empty cfg.Cfg.succs.(bi)
        in
        let inn = ISet.union gen.(bi) (ISet.diff out kill.(bi)) in
        if not (ISet.equal out live_out.(bi) && ISet.equal inn live_in.(bi))
        then begin
          live_out.(bi) <- out;
          live_in.(bi) <- inn;
          changed := true
        end)
      order
  done;
  let table = Hashtbl.create n in
  Array.iteri
    (fun bi b -> Hashtbl.replace table b.bname live_in.(bi))
    cfg.Cfg.blocks;
  table

(* ------------------------------------------------------------------ *)
(* Per-function transformation                                          *)
(* ------------------------------------------------------------------ *)

type plan = {
  p_name : string;
  nargs : int;
  arg_tys : ty list;
  demoted : (reg * ty * int) list; (* alloca, elem ty, offset *)
  stackvars : (reg * int * int) list; (* alloca, size, offset (ranks excluded) *)
  ranks : (reg * int) option; (* ranks alloca reg, offset *)
  slot_reg : reg;
  counters : (string, int) Hashtbl.t; (* block -> sync counter *)
  sync_blocks : (string * int) list; (* blocks with sync roles *)
  join_points : (int * string * int * int) list;
  (* point id, join block, join counter, ranks index *)
  live : (string, ISet.t) Hashtbl.t;
  roles : (string, roles) Hashtbl.t;
  fork_models : (string * int * int) list;
}

let transfer_suffix = function
  | I64 | I32 | I8 | I1 -> "_i64"
  | F64 -> "_f64"
  | Ptr -> "_ptr"
  | Void -> invalid_arg "transfer_suffix: void"

(* Build save instructions for the live locals at [block] (live-in
   demoted allocas + all stack variables + ranks). *)
let build_saves (plan : plan) (f : func) ~block ~stack_addr =
  let live = Option.value (Hashtbl.find_opt plan.live block) ~default:ISet.empty in
  let out = ref [] in
  let emit id ity kind = out := { id; ity; kind } :: !out in
  List.iter
    (fun (a, ty, off) ->
      if ISet.mem a live then begin
        let l = fresh_reg f ty in
        emit l ty (Load (ty, Reg a));
        let v, sfx =
          match ty with
          | I64 -> (Reg l, "_i64")
          | F64 -> (Reg l, "_f64")
          | Ptr -> (Reg l, "_ptr")
          | I1 | I8 | I32 ->
            let z = fresh_reg f I64 in
            emit z I64 (Cast (Zext, ty, I64, Reg l));
            (Reg z, "_i64")
          | Void -> assert false
        in
        emit (-1) Void (Call ("MUTLS_save_regvar" ^ sfx, [ i64 off; v ]))
      end)
    plan.demoted;
  List.iter
    (fun (a, size, off) ->
      emit (-1) Void
        (Call ("MUTLS_save_stackvar", [ i64 off; stack_addr a; i64 size ])))
    plan.stackvars;
  (match plan.ranks with
  | Some (r, off) ->
    emit (-1) Void
      (Call ("MUTLS_save_stackvar", [ i64 off; Reg r; i64 (8 * List.length plan.join_points) ]))
  | None -> ());
  List.rev !out

(* Build restore instructions matching [build_saves]. *)
let build_restores (plan : plan) (f : func) ~block ~stack_addr =
  let live = Option.value (Hashtbl.find_opt plan.live block) ~default:ISet.empty in
  let out = ref [] in
  let emit id ity kind = out := { id; ity; kind } :: !out in
  List.iter
    (fun (a, ty, off) ->
      if ISet.mem a live then begin
        match ty with
        | I64 | F64 | Ptr ->
          let l = fresh_reg f ty in
          emit l ty (Call ("MUTLS_restore_regvar" ^ transfer_suffix ty, [ i64 off ]));
          emit (-1) Void (Store (ty, Reg l, Reg a))
        | I1 | I8 | I32 ->
          let l = fresh_reg f I64 in
          emit l I64 (Call ("MUTLS_restore_regvar_i64", [ i64 off ]));
          let t = fresh_reg f ty in
          emit t ty (Cast (Trunc, I64, ty, Reg l));
          emit (-1) Void (Store (ty, Reg t, Reg a))
        | Void -> assert false
      end)
    plan.demoted;
  List.iter
    (fun (a, size, off) ->
      emit (-1) Void
        (Call ("MUTLS_restore_stackvar", [ i64 off; stack_addr a; i64 size ])))
    plan.stackvars;
  (match plan.ranks with
  | Some (r, off) ->
    emit (-1) Void
      (Call ("MUTLS_restore_stackvar",
             [ i64 off; Reg r; i64 (8 * List.length plan.join_points) ]))
  | None -> ());
  List.rev !out

(* Fork-time transfer: arguments + demoted locals live at the join
   block + stack variable addresses. *)
let build_fork_saves (plan : plan) (f : func) ~rank_v ~join_block ~stack_addr =
  let live =
    Option.value (Hashtbl.find_opt plan.live join_block) ~default:ISet.empty
  in
  let out = ref [] in
  let emit id ity kind = out := { id; ity; kind } :: !out in
  List.iteri
    (fun j ty ->
      let v, sfx =
        match ty with
        | I64 -> (Arg j, "_i64")
        | F64 -> (Arg j, "_f64")
        | Ptr -> (Arg j, "_ptr")
        | I1 | I8 | I32 ->
          let z = fresh_reg f I64 in
          emit z I64 (Cast (Zext, ty, I64, Arg j));
          (Reg z, "_i64")
        | Void -> assert false
      in
      emit (-1) Void (Call ("MUTLS_set_fork_reg" ^ sfx, [ rank_v; i64 j; v ])))
    plan.arg_tys;
  List.iter
    (fun (a, ty, off) ->
      if ISet.mem a live then begin
        let l = fresh_reg f ty in
        emit l ty (Load (ty, Reg a));
        let v, sfx =
          match ty with
          | I64 -> (Reg l, "_i64")
          | F64 -> (Reg l, "_f64")
          | Ptr -> (Reg l, "_ptr")
          | I1 | I8 | I32 ->
            let z = fresh_reg f I64 in
            emit z I64 (Cast (Zext, ty, I64, Reg l));
            (Reg z, "_i64")
          | Void -> assert false
        in
        emit (-1) Void (Call ("MUTLS_set_fork_reg" ^ sfx, [ rank_v; i64 off; v ]))
      end)
    plan.demoted;
  List.iter
    (fun (a, _, off) ->
      emit (-1) Void (Call ("MUTLS_set_fork_addr", [ rank_v; i64 off; stack_addr a ])))
    plan.stackvars;
  List.rev !out

(* Speculative-entry restore of fork-time values. *)
let build_spec_entry_restores (plan : plan) (f : func) ~join_block =
  let live =
    Option.value (Hashtbl.find_opt plan.live join_block) ~default:ISet.empty
  in
  let out = ref [] in
  let emit id ity kind = out := { id; ity; kind } :: !out in
  List.iter
    (fun (a, ty, off) ->
      if ISet.mem a live then begin
        match ty with
        | I64 | F64 | Ptr ->
          let l = fresh_reg f ty in
          emit l ty (Call ("MUTLS_get_fork_reg" ^ transfer_suffix ty, [ i64 off ]));
          emit (-1) Void (Store (ty, Reg l, Reg a))
        | I1 | I8 | I32 ->
          let l = fresh_reg f I64 in
          emit l I64 (Call ("MUTLS_get_fork_reg_i64", [ i64 off ]));
          let t = fresh_reg f ty in
          emit t ty (Cast (Trunc, I64, ty, Reg l));
          emit (-1) Void (Store (ty, Reg t, Reg a))
        | Void -> assert false
      end)
    plan.demoted;
  List.rev !out

(* Join-time prediction validation. *)
let build_validates (plan : plan) (f : func) ~rank_v ~point ~join_block =
  let live =
    Option.value (Hashtbl.find_opt plan.live join_block) ~default:ISet.empty
  in
  let out = ref [] in
  let emit id ity kind = out := { id; ity; kind } :: !out in
  List.iter
    (fun (a, ty, off) ->
      if ISet.mem a live then begin
        let l = fresh_reg f ty in
        emit l ty (Load (ty, Reg a));
        let v, sfx =
          match ty with
          | I64 -> (Reg l, "_i64")
          | F64 -> (Reg l, "_f64")
          | Ptr -> (Reg l, "_ptr")
          | I1 | I8 | I32 ->
            let z = fresh_reg f I64 in
            emit z I64 (Cast (Zext, ty, I64, Reg l));
            (Reg z, "_i64")
          | Void -> assert false
        in
        emit (-1) Void
          (Call ("MUTLS_validate_local" ^ sfx, [ rank_v; i64 point; i64 off; v ]))
      end)
    plan.demoted;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Analysis: build the per-function plan                                *)
(* ------------------------------------------------------------------ *)

let analyze (m : modul) opts (f : func) =
  let fc =
    { f; opts; label_counter = 0; roles = Hashtbl.create 16; fork_sites = [] }
  in
  isolate_entry fc;
  split_blocks fc m;
  mark_loop_headers fc m;
  let slots = Reg2mem.demote f in
  let d_alloca_set =
    IntMap.fold (fun _ d acc -> ISet.add d.Reg2mem.d_alloca acc) slots ISet.empty
  in
  let entry = entry_block f in
  let stack_alloca_list =
    List.filter_map
      (fun i ->
        match i.kind with
        | Alloca n when not (ISet.mem i.id d_alloca_set) -> Some (i.id, n)
        | _ -> None)
      entry.insts
  in
  (* join points *)
  let joins =
    Hashtbl.fold
      (fun name r acc ->
        match r.r_join with Some p -> (p, name) :: acc | None -> acc)
      fc.roles []
    |> List.sort compare
  in
  let () =
    let ids = List.map fst joins in
    let rec dup = function
      | a :: (b :: _ as rest) -> if a = b then true else dup rest
      | _ -> false
    in
    if dup ids then fail "%s: duplicate join point id" f.fname
  in
  let njoins = List.length joins in
  (* the ranks array (paper §IV-D) and the dispatch counter slot *)
  let ranks_reg =
    if njoins > 0 then begin
      let a = fresh_reg f Ptr in
      (* Zero-initialise in the entry block: it runs on every kind of
         entry (normal call, speculative entry, reconstruction), and
         stack slots are reused across speculative threads, so the
         fresh frame would otherwise see a dead thread's ranks. *)
      let init = ref [ { id = a; ity = Ptr; kind = Alloca (8 * njoins) } ] in
      for k = njoins - 1 downto 0 do
        if k = 0 then
          init := !init @ [ { id = -1; ity = Void; kind = Store (I64, i64 0, Reg a) } ]
        else begin
          let pa = fresh_reg f Ptr in
          init :=
            !init
            @ [ { id = pa; ity = Ptr; kind = Ptradd (Reg a, i64 (8 * k)) };
                { id = -1; ity = Void; kind = Store (I64, i64 0, Reg pa) } ]
        end
      done;
      entry.insts <- entry.insts @ !init;
      Some a
    end
    else None
  in
  let slot_reg = fresh_reg f Ptr in
  entry.insts <- entry.insts @ [ { id = slot_reg; ity = Ptr; kind = Alloca 8 } ];
  (* fork ids must have a matching join in the same function *)
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.kind with
          | Call (n, Const (Cint (p, _)) :: _) when n = fork_intrinsic ->
            if not (List.mem_assoc (Int64.to_int p) joins) then
              fail "%s: fork point %Ld has no join point" f.fname p
          | Call (n, _) when n = fork_intrinsic ->
            fail "%s: fork point id must be a constant" f.fname
          | _ -> ())
        b.insts)
    f.blocks;
  (* counters *)
  let counters = Hashtbl.create 16 in
  let ctr = ref 0 in
  List.iter
    (fun b ->
      match Hashtbl.find_opt fc.roles b.bname with
      | Some r when is_sync r || r.r_join <> None ->
        incr ctr;
        Hashtbl.replace counters b.bname !ctr
      | _ -> ())
    f.blocks;
  let join_points =
    List.mapi
      (fun idx (p, name) -> (p, name, Hashtbl.find counters name, idx))
      joins
  in
  let live = alloca_liveness f d_alloca_set in
  (* offsets: arguments, then demoted locals, then stack variables *)
  let nargs = List.length f.params in
  let next_off = ref nargs in
  let demoted =
    IntMap.fold (fun _ d acc -> (d.Reg2mem.d_alloca, d.Reg2mem.d_ty) :: acc) slots []
    |> List.sort compare
    |> List.map (fun (a, ty) ->
           let off = !next_off in
           incr next_off;
           (a, ty, off))
  in
  let stackvars =
    List.map
      (fun (a, size) ->
        let off = !next_off in
        incr next_off;
        (a, size, off))
      stack_alloca_list
  in
  let ranks =
    match ranks_reg with
    | Some r ->
      let off = !next_off in
      incr next_off;
      Some (r, off)
    | None -> None
  in
  if !next_off >= opts.max_locals then
    fail "%s: %d locals exceed the RegisterBuffer size %d" f.fname !next_off
      opts.max_locals;
  let sync_blocks =
    List.filter_map
      (fun b ->
        match Hashtbl.find_opt fc.roles b.bname with
        | Some r when is_sync r -> Some (b.bname, Hashtbl.find counters b.bname)
        | _ -> None)
      f.blocks
  in
  {
    p_name = f.fname;
    nargs;
    arg_tys = List.map snd f.params;
    demoted;
    stackvars;
    ranks;
    slot_reg;
    counters;
    sync_blocks;
    join_points;
    live;
    roles = fc.roles;
    fork_models = [];
  }

(* ------------------------------------------------------------------ *)
(* Speculative-version conversions                                      *)
(* ------------------------------------------------------------------ *)

let mem_suffix = function
  | I64 -> "_i64"
  | I32 -> "_i32"
  | I8 | I1 -> "_i8"
  | F64 -> "_f64"
  | Ptr -> "_ptr"
  | Void -> invalid_arg "mem_suffix: void"

(* Replace every original load/store by a TLS runtime call (paper
   §IV-C step 1).  Demoted-alloca accesses and the pass's own
   bookkeeping slots stay plain: they are registers, not memory. *)
let convert_memops (plan : plan) (spec : func) =
  let excluded = Hashtbl.create 16 in
  List.iter (fun (a, _, _) -> Hashtbl.replace excluded a ()) plan.demoted;
  Hashtbl.replace excluded plan.slot_reg ();
  (match plan.ranks with Some (r, _) -> Hashtbl.replace excluded r () | None -> ());
  let plain = function
    | Reg a -> Hashtbl.mem excluded a
    | _ -> false
  in
  List.iter
    (fun b ->
      b.insts <-
        List.map
          (fun i ->
            match i.kind with
            | Load (ty, a) when not (plain a) ->
              { i with kind = Call ("MUTLS_load" ^ mem_suffix ty, [ a ]) }
            | Store (ty, v, a) when not (plain a) ->
              { i with kind = Call ("MUTLS_store" ^ mem_suffix ty, [ v; a ]) }
            | _ -> i)
          b.insts)
    spec.blocks

(* Insert MUTLS_pick_stackaddr for every stack variable and substitute
   its result for the alloca register throughout the function. *)
let insert_picks (plan : plan) (spec : func) ~counter_arg =
  let subst = Hashtbl.create 8 in
  let picks =
    List.map
      (fun (a, _, off) ->
        let p = fresh_reg spec Ptr in
        Hashtbl.replace subst a (Reg p);
        (p, a, off))
      plan.stackvars
  in
  let rewrite v =
    match v with
    | Reg a -> ( match Hashtbl.find_opt subst a with Some v' -> v' | None -> v)
    | _ -> v
  in
  List.iter
    (fun b ->
      b.insts <- List.map (fun i -> { i with kind = map_instr_values rewrite i.kind }) b.insts;
      b.term <- map_term_values rewrite b.term)
    spec.blocks;
  let entry = entry_block spec in
  entry.insts <-
    entry.insts
    @ List.map
        (fun (p, a, off) ->
          { id = p; ity = Ptr;
            kind = Call ("MUTLS_pick_stackaddr", [ counter_arg; i64 off; Reg a ]) })
        picks;
  (* stack_addr lookup for surgery on the speculative version *)
  fun a ->
    match List.find_opt (fun (_, a', _) -> a' = a) picks with
    | Some (p, _, _) -> Reg p
    | None -> Reg a

(* Redirect internal calls to the speculative versions. *)
let redirect_internal_calls (spec : func) prepared ~rank_arg =
  List.iter
    (fun b ->
      b.insts <-
        List.map
          (fun i ->
            match i.kind with
            | Call (n, args) when Hashtbl.mem prepared n ->
              { i with kind = Call (n ^ ".spec", args @ [ i64 0; rank_arg ]) }
            | _ -> i)
          b.insts)
    spec.blocks

(* ------------------------------------------------------------------ *)
(* Speculative synchronization points                                   *)
(* ------------------------------------------------------------------ *)

(* Prepend check/terminate/enter/return/barrier/cast machinery at the
   top of every synchronization block of the speculative version. *)
let insert_sync_points (plan : plan) (spec : func) ~stack_addr =
  let new_blocks = ref [] in
  List.iter
    (fun b ->
      match Hashtbl.find_opt plan.roles b.bname with
      | Some r when is_sync r ->
        let i = Hashtbl.find plan.counters b.bname in
        let saves = build_saves plan spec ~block:b.bname ~stack_addr in
        (* point calls in leader order: barrier, cast, terminate, enter, return *)
        let calls = ref [] in
        let emitc name args = calls := { id = -1; ity = Void; kind = Call (name, args) } :: !calls in
        if r.r_barrier then emitc "MUTLS_barrier_point" [ i64 i ];
        if r.r_cast then begin
          (* operand of the leading pointer/integer cast *)
          let operand =
            List.find_map
              (fun ins ->
                match ins.kind with
                | Cast (Ptrtoint, _, _, v) | Cast (Inttoptr, _, _, v) -> Some v
                | _ -> None)
              b.insts
          in
          match operand with
          | Some v -> emitc "MUTLS_ptr_int_cast" [ i64 i; v ]
          | None -> ()
        end;
        if r.r_terminate then emitc "MUTLS_terminate_point" [ i64 i ];
        if r.r_enter then emitc "MUTLS_enter_point" [ i64 i ];
        if r.r_return then emitc "MUTLS_return_point" [ i64 i ];
        let tail_insts = saves @ List.rev !calls @ b.insts in
        if r.r_check then begin
          (* split: poll first; commit block saves and commits *)
          let rest_name = b.bname ^ ".rest" in
          let commit_name = b.bname ^ ".commit" in
          let rest =
            { bname = rest_name; phis = []; insts = tail_insts; term = b.term }
          in
          let commit_saves = build_saves plan spec ~block:b.bname ~stack_addr in
          let commit_blk =
            { bname = commit_name; phis = [];
              insts =
                commit_saves
                @ [ { id = -1; ity = Void; kind = Call ("MUTLS_commit", [ i64 i ]) } ];
              term = Unreachable }
          in
          let stop = fresh_reg spec I64 in
          let stop_b = fresh_reg spec I1 in
          b.insts <-
            [ { id = stop; ity = I64; kind = Call ("MUTLS_check_point", [ i64 i ]) };
              { id = stop_b; ity = I1; kind = Icmp (Isgt, I64, Reg stop, i64 0) } ];
          b.term <- Cbr (Reg stop_b, commit_name, rest_name);
          new_blocks := rest :: commit_blk :: !new_blocks
        end
        else b.insts <- tail_insts
      | _ -> ())
    spec.blocks;
  spec.blocks <- spec.blocks @ List.rev !new_blocks

(* ------------------------------------------------------------------ *)
(* Fork and join surgery (both versions)                                *)
(* ------------------------------------------------------------------ *)

let ranks_slot_addr (plan : plan) (f : func) emit idx =
  match plan.ranks with
  | None -> fail "%s: fork/join without a ranks array" f.fname
  | Some (r, _) ->
    if idx = 0 then Reg r
    else begin
      let pa = fresh_reg f Ptr in
      emit pa Ptr (Ptradd (Reg r, i64 (8 * idx)));
      Reg pa
    end

let apply_fork_surgery (plan : plan) (f : func) ~stack_addr ~proxy_name
    ~expand_ok =
  let new_blocks = ref [] in
  List.iter
    (fun b ->
      let fork =
        List.find_opt
          (fun i ->
            match i.kind with
            | Call (n, _) when n = fork_intrinsic -> true
            | _ -> false)
          b.insts
      in
      match fork with
      | None -> ()
      | Some fi ->
        let p, model =
          match fi.kind with
          | Call (_, [ Const (Cint (p, _)); Const (Cint (m, _)) ]) ->
            (Int64.to_int p, Int64.to_int m)
          | _ -> fail "%s: malformed fork annotation" f.fname
        in
        let _, join_blk, jc, idx =
          try List.find (fun (p', _, _, _) -> p' = p) plan.join_points
          with Not_found -> fail "%s: fork %d has no join" f.fname p
        in
        let cont =
          match b.term with
          | Br l -> l
          | _ -> fail "%s: fork block has a conditional terminator" f.fname
        in
        let pre =
          List.filter
            (fun i ->
              match i.kind with
              | Call (n, _) when n = fork_intrinsic -> false
              | _ -> true)
            b.insts
        in
        (* §IV-D: at most one thread per fork/join point id — if the
           ranks entry is occupied, a speculative thread already covers
           this join point and the fork is skipped. *)
        let out = ref (List.rev pre) in
        let emit id ity kind = out := { id; ity; kind } :: !out in
        let slot0 = ranks_slot_addr plan f emit idx in
        let cur = fresh_reg f I64 in
        emit cur I64 (Load (I64, slot0));
        let is_free = fresh_reg f I1 in
        emit is_free I1 (Icmp (Ieq, I64, Reg cur, i64 0));
        b.insts <- List.rev !out;
        let try_name = Printf.sprintf "%s.forktry.%d" b.bname p in
        let spec_name = Printf.sprintf "%s.forkspec.%d" b.bname p in
        b.term <- Cbr (Reg is_free, try_name, cont);
        let out = ref [] in
        let emit id ity kind = out := { id; ity; kind } :: !out in
        let rank = fresh_reg f I64 in
        (* bits 0-1 carry the fork model; bit 2 carries the store-free
           analysis verdict (Store_free), making the fork point
           "expandable" — the runtime's policy may then run the child
           at Level 1 with no GlobalBuffer tracking.  The IR stays
           self-describing across dump/parse. *)
        let mi = if expand_ok then model lor 4 else model in
        emit rank I64 (Call ("MUTLS_get_CPU", [ i64 mi; i64 p ]));
        let slot = ranks_slot_addr plan f emit idx in
        emit (-1) Void (Store (I64, Reg rank, slot));
        let has = fresh_reg f I1 in
        emit has I1 (Icmp (Isgt, I64, Reg rank, i64 0));
        let try_blk =
          { bname = try_name; phis = []; insts = List.rev !out;
            term = Cbr (Reg has, spec_name, cont) }
        in
        let saves =
          build_fork_saves plan f ~rank_v:(Reg rank) ~join_block:join_blk ~stack_addr
        in
        let spec_blk =
          { bname = spec_name; phis = [];
            insts =
              saves
              @ [ { id = -1; ity = Void;
                    kind = Call (proxy_name, [ Reg rank; i64 jc ]) } ];
            term = Br cont }
        in
        new_blocks := spec_blk :: try_blk :: !new_blocks)
    f.blocks;
  f.blocks <- f.blocks @ List.rev !new_blocks

let apply_join_surgery (plan : plan) (f : func) =
  let new_blocks = ref [] in
  List.iter
    (fun b ->
      let join =
        List.find_opt
          (fun i ->
            match i.kind with
            | Call (n, _) when n = join_intrinsic -> true
            | _ -> false)
          b.insts
      in
      match join with
      | None -> ()
      | Some ji ->
        let p =
          match ji.kind with
          | Call (_, [ Const (Cint (p, _)) ]) -> Int64.to_int p
          | _ -> fail "%s: malformed join annotation" f.fname
        in
        let _, join_blk, _, idx =
          List.find (fun (p', _, _, _) -> p' = p) plan.join_points
        in
        let jb =
          match b.term with
          | Br l -> l
          | _ -> fail "%s: join block has a conditional terminator" f.fname
        in
        if jb <> join_blk then fail "%s: join surgery mismatch at %s" f.fname b.bname;
        let pre =
          List.filter
            (fun i ->
              match i.kind with
              | Call (n, _) when n = join_intrinsic -> false
              | _ -> true)
            b.insts
        in
        let out = ref (List.rev pre) in
        let emit id ity kind = out := { id; ity; kind } :: !out in
        let slot = ranks_slot_addr plan f emit idx in
        let rv = fresh_reg f I64 in
        emit rv I64 (Load (I64, slot));
        let has = fresh_reg f I1 in
        emit has I1 (Icmp (Isgt, I64, Reg rv, i64 0));
        b.insts <- List.rev !out;
        let check_name = Printf.sprintf "%s.joinchk.%d" b.bname p in
        b.term <- Cbr (Reg has, check_name, jb);
        (* validation + synchronize *)
        let out = ref [] in
        let emit id ity kind = out := { id; ity; kind } :: !out in
        let validates =
          build_validates plan f ~rank_v:(Reg rv) ~point:p ~join_block:join_blk
        in
        List.iter (fun i -> out := i :: !out) (List.rev validates);
        let ok = fresh_reg f I64 in
        emit ok I64 (Call ("MUTLS_synchronize", [ i64 p; Reg rv ]));
        let slot2 = ranks_slot_addr plan f emit idx in
        emit (-1) Void (Store (I64, i64 0, slot2));
        let okb = fresh_reg f I1 in
        emit okb I1 (Icmp (Isgt, I64, Reg ok, i64 0));
        let commit_name = Printf.sprintf "%s.joincommit.%d" b.bname p in
        let check_blk =
          { bname = check_name; phis = []; insts = List.rev !out;
            term = Cbr (Reg okb, commit_name, jb) }
        in
        (* jump to the synchronization table through the counter slot *)
        let cc = fresh_reg f I64 in
        let commit_blk =
          { bname = commit_name; phis = [];
            insts =
              [ { id = cc; ity = I64; kind = Call ("MUTLS_sync_counter", []) };
                { id = -1; ity = Void; kind = Store (I64, Reg cc, Reg plan.slot_reg) } ];
            term = Br "mutls.sync.dispatch" }
        in
        new_blocks := commit_blk :: check_blk :: !new_blocks)
    f.blocks;
  f.blocks <- f.blocks @ List.rev !new_blocks

(* ------------------------------------------------------------------ *)
(* Entry dispatch, synchronization and speculation tables               *)
(* ------------------------------------------------------------------ *)

let strip_intrinsics (f : func) =
  List.iter
    (fun b ->
      b.insts <-
        List.filter
          (fun i ->
            match i.kind with
            | Call (n, _) -> not (is_source_intrinsic n)
            | _ -> true)
          b.insts)
    f.blocks

let build_entry_dispatch (plan : plan) (f : func) ~spec_counter ~stack_addr =
  let entry = entry_block f in
  let body =
    match entry.term with
    | Br l -> l
    | _ -> fail "%s: entry must end in a plain branch" f.fname
  in
  (* restore blocks + synchronization table *)
  let restore_blocks =
    List.map
      (fun (bname, i) ->
        let rname = Printf.sprintf "mutls.restore.%d" i in
        let restores = build_restores plan f ~block:bname ~stack_addr in
        ( i,
          { bname = rname; phis = []; insts = restores; term = Br bname } ))
      plan.sync_blocks
  in
  let cc = fresh_reg f I64 in
  let dispatch =
    { bname = "mutls.sync.dispatch"; phis = [];
      insts = [ { id = cc; ity = I64; kind = Load (I64, Reg plan.slot_reg) } ];
      term =
        Switch
          ( Reg cc,
            "mutls.sync.bad",
            List.map (fun (i, blk) -> (Int64.of_int i, blk.bname)) restore_blocks ) }
  in
  let bad =
    { bname = "mutls.sync.bad"; phis = [];
      insts = [ { id = -1; ity = Void; kind = Call ("MUTLS_bad_sync", [ Reg cc ]) } ];
      term = Unreachable }
  in
  (* sync_entry prologue *)
  let se = fresh_reg f I64 in
  let nz = fresh_reg f I1 in
  let prologue_insts =
    [ { id = se; ity = I64; kind = Call ("MUTLS_sync_entry", []) };
      { id = -1; ity = Void; kind = Store (I64, Reg se, Reg plan.slot_reg) };
      { id = nz; ity = I1; kind = Icmp (Isgt, I64, Reg se, i64 0) } ]
  in
  let prologue_term = Cbr (Reg nz, "mutls.sync.dispatch", body) in
  let extra_blocks = ref [] in
  (match spec_counter with
  | None ->
    entry.insts <- entry.insts @ prologue_insts;
    entry.term <- prologue_term
  | Some counter_arg ->
    (* speculation table first, then the sync_entry prologue *)
    let seq_entry =
      { bname = "mutls.seq.entry"; phis = []; insts = prologue_insts;
        term = prologue_term }
    in
    let spec_restores =
      List.map
        (fun (p, join_blk, jc, _) ->
          let rname = Printf.sprintf "mutls.specrestore.%d" p in
          let insts = build_spec_entry_restores plan f ~join_block:join_blk in
          (jc, { bname = rname; phis = []; insts; term = Br join_blk }))
        plan.join_points
    in
    entry.term <-
      Switch
        ( counter_arg,
          "mutls.seq.entry",
          List.map (fun (jc, blk) -> (Int64.of_int jc, blk.bname)) spec_restores );
    extra_blocks := seq_entry :: List.map snd spec_restores);
  f.blocks <-
    f.blocks @ !extra_blocks @ List.map snd restore_blocks @ [ dispatch; bad ]

(* ------------------------------------------------------------------ *)
(* Stub and proxy generation (paper §IV-C step 2)                       *)
(* ------------------------------------------------------------------ *)

let gen_stub_proxy (m : modul) (plan : plan) (f : func) =
  let spec_name = f.fname ^ ".spec" in
  let stub_name = f.fname ^ ".stub" in
  let proxy_name = f.fname ^ ".proxy" in
  (* stub: fetch arguments, then enter the speculative function *)
  let stub =
    { fname = stub_name; params = [ ("rank", I64) ]; ret = Void; blocks = [];
      next_reg = 0; reg_tys = Hashtbl.create 8 }
  in
  let insts = ref [] in
  let emit id ity kind = insts := { id; ity; kind } :: !insts in
  let args =
    List.mapi
      (fun j ty ->
        match ty with
        | I64 | F64 | Ptr ->
          let r = fresh_reg stub ty in
          emit r ty (Call ("MUTLS_get_fork_reg" ^ transfer_suffix ty, [ i64 j ]));
          Reg r
        | I1 | I8 | I32 ->
          let r = fresh_reg stub I64 in
          emit r I64 (Call ("MUTLS_get_fork_reg_i64", [ i64 j ]));
          let t = fresh_reg stub ty in
          emit t ty (Cast (Trunc, I64, ty, Reg r));
          Reg t
        | Void -> assert false)
      plan.arg_tys
  in
  let c = fresh_reg stub I64 in
  emit c I64 (Call ("MUTLS_entry_counter", []));
  let call_id = if f.ret = Void then -1 else fresh_reg stub f.ret in
  emit call_id f.ret (Call (spec_name, args @ [ Reg c; Arg 0 ]));
  stub.blocks <-
    [ { bname = "entry"; phis = []; insts = List.rev !insts; term = Ret None } ];
  (* proxy: launch the thread *)
  let proxy =
    { fname = proxy_name; params = [ ("rank", I64); ("counter", I64) ];
      ret = Void; blocks = []; next_reg = 0; reg_tys = Hashtbl.create 4 }
  in
  proxy.blocks <-
    [ { bname = "entry"; phis = [];
        insts =
          [ { id = -1; ity = Void;
              kind = Call ("MUTLS_speculate", [ Arg 0; Arg 1; Funcref stub_name ]) } ];
        term = Ret None } ];
  m.funcs <- m.funcs @ [ stub; proxy ]

(* ------------------------------------------------------------------ *)
(* Top level                                                            *)
(* ------------------------------------------------------------------ *)

let transform_function (m : modul) opts prepared ~expand_ok (f : func) =
  let plan = analyze m opts f in
  let spec =
    Clone.clone_func ~new_name:(f.fname ^ ".spec")
      ~extra_params:[ ("mutls.counter", I64); ("mutls.rank", I64) ] f
  in
  m.funcs <- m.funcs @ [ spec ];
  let counter_arg = Arg plan.nargs in
  let rank_arg = Arg (plan.nargs + 1) in
  (* speculative-only rewrites *)
  convert_memops plan spec;
  let spec_stack_addr = insert_picks plan spec ~counter_arg in
  redirect_internal_calls spec prepared ~rank_arg;
  insert_sync_points plan spec ~stack_addr:spec_stack_addr;
  (* shared surgery *)
  let proxy_name = f.fname ^ ".proxy" in
  apply_fork_surgery plan f ~stack_addr:(fun a -> Reg a) ~proxy_name ~expand_ok;
  apply_fork_surgery plan spec ~stack_addr:spec_stack_addr ~proxy_name
    ~expand_ok;
  apply_join_surgery plan f;
  apply_join_surgery plan spec;
  build_entry_dispatch plan f ~spec_counter:None ~stack_addr:(fun a -> Reg a);
  build_entry_dispatch plan spec ~spec_counter:(Some counter_arg)
    ~stack_addr:spec_stack_addr;
  strip_intrinsics f;
  strip_intrinsics spec;
  gen_stub_proxy m plan f;
  plan

(* Run the speculator pass: returns a fresh transformed module; the
   input module is left untouched (it remains the sequential
   baseline). *)
let run ?(opts = default_options) ?(verify = true) (m0 : modul) =
  let m = Clone.clone_module m0 in
  let prepared = prepared_set m in
  if Hashtbl.length prepared = 0 then m
  else begin
    (* Store-free verdicts are computed on the pristine input (its own
       mem2reg'd clone), before any surgery touches [m]. *)
    let sf = Store_free.analyze ~safe_externs:opts.safe_externs m0 in
    let targets = List.filter (fun f -> Hashtbl.mem prepared f.fname) m.funcs in
    let _plans =
      List.map
        (fun f ->
          transform_function m opts prepared
            ~expand_ok:(Store_free.store_free sf f.fname)
            f)
        targets
    in
    Mem2reg.run_module m;
    if verify then (
      match Verify.check_module m with
      | () -> ()
      | exception Verify.Invalid msg -> fail "post-pass verification: %s" msg);
    m
  end
