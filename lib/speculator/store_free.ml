(* Static store-free region analysis, backing the policy engine's
   Level-1 [Expand] decision (STU's "zero-risk parallelism" level).

   A function is store-free when, after mem2reg promotion, its body
   performs no Store at all and every call it makes is a source
   intrinsic, a safe (pure) extern, or an internal function that is
   itself store-free — a greatest fixpoint over the call graph, so
   mutual recursion is handled (optimistically assume free, then
   iteratively falsify).

   A fork point inside a store-free function is "expandable": between
   fork and join neither the parent (running the region ahead) nor the
   speculative child can store to shared memory, so the child may read
   main memory directly — no GlobalBuffer read/write-set tracking and
   nothing to validate.  Locals still travel through the fork-time
   register transfer and are re-checked by MUTLS_validate_local at the
   join, and the runtime keeps a dynamic backstop (an Expand thread
   that does store to registered memory is demoted and rolled back), so
   an optimistic judgement costs performance, never correctness.

   The analysis runs on a clone of the pre-pass module: mem2reg first
   promotes scalar locals (whose allocas/stores say nothing about
   shared memory), leaving only genuinely memory-carried stores. *)

open Mutls_mir
open Mutls_mir.Ir

let default_safe =
  [ "abs"; "labs"; "fabs"; "sqrt"; "sin"; "cos"; "tan"; "exp"; "log"; "pow";
    "floor"; "ceil"; "fmod"; "fmin"; "fmax"; "min_i64"; "max_i64" ]

type t = {
  sf_free : (string, bool) Hashtbl.t;
  sf_points : (string * int) list; (* expandable (function, fork point) *)
}

(* Direct judgement: no surviving Store, no unsafe extern call.
   Returns the internal callees whose freedom the verdict depends on. *)
let direct (m : modul) ~safe (f : func) =
  let ok = ref true in
  let callees = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match i.kind with
          | Store _ -> ok := false
          | Call (n, _) ->
            if is_source_intrinsic n then ()
            else if find_func m n <> None then callees := n :: !callees
            else if not (List.mem n safe) then ok := false
          | _ -> ())
        b.insts)
    f.blocks;
  (!ok, !callees)

let analyze ?(safe_externs = default_safe) (m0 : modul) =
  let m = Clone.clone_module m0 in
  Mem2reg.run_module m;
  let free = Hashtbl.create 16 in
  let deps = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let ok, callees = direct m ~safe:safe_externs f in
      Hashtbl.replace free f.fname ok;
      Hashtbl.replace deps f.fname callees)
    m.funcs;
  (* greatest fixpoint: falsify any function depending on a non-free
     callee until stable *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name callees ->
        if
          Hashtbl.find free name
          && List.exists
               (fun c ->
                 match Hashtbl.find_opt free c with
                 | Some b -> not b
                 | None -> true)
               callees
        then begin
          Hashtbl.replace free name false;
          changed := true
        end)
      deps
  done;
  (* fork annotations survive mem2reg, so the clone can be scanned *)
  let points =
    List.concat_map
      (fun f ->
        if not (Hashtbl.find free f.fname) then []
        else
          List.concat_map
            (fun b ->
              List.filter_map
                (fun i ->
                  match i.kind with
                  | Call (n, Const (Cint (p, _)) :: _) when n = fork_intrinsic
                    ->
                    Some (f.fname, Int64.to_int p)
                  | _ -> None)
                b.insts)
            f.blocks)
      m.funcs
  in
  { sf_free = free; sf_points = points }

let store_free t name =
  match Hashtbl.find_opt t.sf_free name with Some b -> b | None -> false

let expandable_points t = t.sf_points
