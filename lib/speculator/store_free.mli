(** Static store-free region analysis for the policy engine's Level-1
    [Expand] decision (see {!Mutls_runtime.Policy}).

    A function is store-free when, after mem2reg promotion of its
    scalar locals, it performs no [Store] and calls only source
    intrinsics, safe (pure) externs, or internal functions that are
    themselves store-free — computed as a greatest fixpoint over the
    call graph, so recursion is handled.  Fork points inside store-free
    functions are "expandable": the pass encodes the judgement as bit 2
    of MUTLS_get_CPU's model argument, and the runtime's Expand threads
    then read main memory directly with no GlobalBuffer tracking.

    The analysis is sound for performance decisions only by design: the
    runtime keeps a dynamic backstop (an Expand thread storing to
    registered memory is demoted and rolled back), so an optimistic
    verdict can never corrupt an execution. *)

val default_safe : string list
(** Pure externs that never block store-freedom (also the pass's
    default safe-extern list). *)

type t

val analyze : ?safe_externs:string list -> Mutls_mir.Ir.modul -> t
(** Analyze a pre-pass module.  The input is cloned (and the clone
    mem2reg'd) internally; the original is untouched. *)

val store_free : t -> string -> bool
(** Whether the named function (with its transitive internal callees)
    is store-free; [false] for unknown names. *)

val expandable_points : t -> (string * int) list
(** All (function, fork point id) pairs whose enclosing function is
    store-free. *)
