(* Mixed-payoff policy suite: three small workloads whose best
   speculation strategies differ, so no single static policy wins all
   of them — the adaptive policy engine's acceptance benchmark.

   - [hostile]: every chunk read-modify-writes one shared global
     accumulator, so almost every speculation fails validation at the
     join.  Speculating here only burns fork + rollback overhead; the
     winning move is to stop (adaptive Deny; static backoff only skips
     a bounded window and keeps re-probing).

   - [clean]: the classic chained-chunk pattern with independent
     per-chunk results (3x+1-like); speculation pays and a policy must
     NOT deny it (no rollbacks ever occur, so the adaptive engine stays
     out of the way).

   - [scan]: a store-free reduction over a global read-only table —
     each chunk only loads shared memory and updates a live local on a
     rare threshold hit.  The store-free analysis proves the region
     expandable, so the adaptive policy runs it at Level 1 (plain
     memory cost, no GlobalBuffer tracking) where static policies pay
     spec_hit/spec_miss per access plus validation per join. *)

let hostile_name = "policy-hostile"
let clean_name = "policy-clean"
let scan_name = "policy-scan"

(* Shared-accumulator RMW: the child reads [acc] speculatively, the
   parent stores to it before the join — a certain conflict.  [bias]
   keeps the per-chunk work comparable to the clean workload. *)
let hostile_c ?(total = 4096) ?(nchunks = 32) () =
  Printf.sprintf
    {|
int NCHUNKS = %d;
int TOTAL = %d;
int acc = 0;

int steps(int n) {
  int s = 0;
  while (n != 1) {
    if (n %% 2) n = 3 * n + 1;
    else n = n / 2;
    s = s + 1;
  }
  return s;
}

void compute() {
  int per = TOTAL / NCHUNKS;
  for (int c = 0; c < NCHUNKS; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int lo = c * per + 1;
    int sum = 0;
    for (int i = lo; i < lo + per; i++) sum = sum + steps(i);
    acc = acc + sum;
    __builtin_MUTLS_join(0);
  }
}

int main() {
  compute();
  print_int(acc);
  print_newline();
  return acc;
}
|}
    nchunks total

(* Independent chunks into a results array: speculation always pays. *)
let clean_c ?(total = 4096) ?(nchunks = 32) () =
  W_threex.c ~total ~nchunks ()

(* Store-free scan: [compute] and its callee only LOAD the global
   table; the per-chunk result feeds a rare threshold counter, so the
   live local is almost never updated between fork and join (the rare
   update exercises validate_local, Expand's remaining correctness
   mechanism).  The table is initialized in [main], which is outside
   the analyzed region. *)
let scan_c ?(n = 2048) ?(nchunks = 32) ?(threshold = 100000000) () =
  Printf.sprintf
    {|
int N = %d;
int NCHUNKS = %d;
int THRESHOLD = %d;
int A[%d];

int chunk_sum(int lo, int hi) {
  int s = 0;
  for (int i = lo; i < hi; i++) {
    int v = A[i];
    s = s + v * v + (v / 3);
  }
  return s;
}

int compute() {
  int per = N / NCHUNKS;
  int hits = 0;
  for (int c = 0; c < NCHUNKS; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int s = chunk_sum(c * per, c * per + per);
    if (s > THRESHOLD) hits = hits + 1;
    __builtin_MUTLS_join(0);
  }
  return hits;
}

int main() {
  for (int i = 0; i < N; i++) A[i] = (i * 37 + 11) %% 1000;
  int h = compute();
  print_int(h);
  print_newline();
  return h;
}
|}
    n nchunks threshold n
