(* Benchmark registry: the paper's Table II.  Each workload provides
   its MiniC source (and MiniFortran where the paper evaluates both)
   at a default, simulation-friendly scale plus a [scaled] variant for
   sweeps. *)

type pattern = Loop | Divide_and_conquer | Depth_first_search

let pattern_to_string = function
  | Loop -> "loop"
  | Divide_and_conquer -> "divide and conquer"
  | Depth_first_search -> "depth-first search"

type workload_class = Compute_intensive | Memory_intensive

let class_to_string = function
  | Compute_intensive -> "Computation intensive"
  | Memory_intensive -> "Memory intensive"

type t = {
  name : string;
  description : string;
  amount : string; (* paper's data amount, for Table II *)
  pattern : pattern;
  wclass : workload_class;
  c_source : unit -> string;
  fortran_source : (unit -> string) option;
  small : unit -> string; (* fast variant for tests *)
}

let all : t list =
  [
    {
      name = "3x+1";
      description = "3x+1 problem in number theory";
      amount = "40M integers (enumerate)";
      pattern = Loop;
      wclass = Compute_intensive;
      c_source = (fun () -> W_threex.c ());
      fortran_source = Some (fun () -> W_threex.fortran ());
      small = (fun () -> W_threex.c ~total:512 ~nchunks:16 ());
    };
    {
      name = "mandelbrot";
      description = "mandelbrot fractal generation";
      amount = "512x512 image, maximum 80000 iterations";
      pattern = Loop;
      wclass = Compute_intensive;
      c_source = (fun () -> W_mandelbrot.c ());
      fortran_source = Some (fun () -> W_mandelbrot.fortran ());
      small = (fun () -> W_mandelbrot.c ~size:16 ~max_iter:60 ());
    };
    {
      name = "md";
      description = "3D molecular dynamics simulation";
      amount = "256 particles, 400 iteration steps";
      pattern = Loop;
      wclass = Compute_intensive;
      c_source = (fun () -> W_md.c ());
      fortran_source = Some (fun () -> W_md.fortran ());
      small = (fun () -> W_md.c ~n:16 ~steps:2 ~nchunks:8 ());
    };
    {
      name = "bh";
      description = "Barnes-Hut N-body simulation";
      amount = "12800 bodies";
      pattern = Loop;
      wclass = Memory_intensive;
      c_source = (fun () -> W_bh.c ());
      fortran_source = None;
      small = (fun () -> W_bh.c ~n:32 ~steps:1 ~nchunks:8 ());
    };
    {
      name = "fft";
      description = "recursive Fast Fourier Transform";
      amount = "2^20 doubles";
      pattern = Divide_and_conquer;
      wclass = Memory_intensive;
      c_source = (fun () -> W_fft.c ());
      fortran_source = None;
      small = (fun () -> W_fft.c ~logn:7 ~cutoff:16 ());
    };
    {
      name = "matmult";
      description = "block-based matrix multiplication";
      amount = "1024x1024 matrices";
      pattern = Divide_and_conquer;
      wclass = Memory_intensive;
      c_source = (fun () -> W_matmult.c ());
      fortran_source = None;
      small = (fun () -> W_matmult.c ~n:16 ~cutoff:4 ());
    };
    {
      name = "nqueen";
      description = "N-queen problem";
      amount = "14 queens";
      pattern = Depth_first_search;
      wclass = Memory_intensive;
      c_source = (fun () -> W_nqueen.c ());
      fortran_source = None;
      small = (fun () -> W_nqueen.c ~n:6 ());
    };
    {
      name = "tsp";
      description = "travelling sales person (TSP) problem";
      amount = "12 cities";
      pattern = Depth_first_search;
      wclass = Memory_intensive;
      c_source = (fun () -> W_tsp.c ());
      fortran_source = None;
      small = (fun () -> W_tsp.c ~n:7 ());
    };
  ]

(* The policy engine's acceptance suite (kept out of [all] so the
   paper-figure artifacts are unaffected): three workloads whose best
   speculation strategies differ — deny, speculate, expand — so no
   single static policy wins all of them.  See W_policy. *)
let mixed_payoff : t list =
  [
    {
      name = W_policy.hostile_name;
      description = "shared-accumulator RMW: every speculation conflicts";
      amount = "4096 integers, 32 chunks";
      pattern = Loop;
      wclass = Memory_intensive;
      c_source = (fun () -> W_policy.hostile_c ());
      fortran_source = None;
      small = (fun () -> W_policy.hostile_c ~total:512 ~nchunks:8 ());
    };
    {
      name = W_policy.clean_name;
      description = "independent chunks: speculation always pays";
      amount = "4096 integers, 32 chunks";
      pattern = Loop;
      wclass = Compute_intensive;
      c_source = (fun () -> W_policy.clean_c ());
      fortran_source = None;
      small = (fun () -> W_policy.clean_c ~total:512 ~nchunks:8 ());
    };
    {
      name = W_policy.scan_name;
      description = "store-free reduction over a read-only table (expandable)";
      amount = "2048-entry table, 32 chunks";
      pattern = Loop;
      wclass = Memory_intensive;
      c_source = (fun () -> W_policy.scan_c ());
      fortran_source = None;
      small = (fun () -> W_policy.scan_c ~n:512 ~nchunks:8 ());
    };
  ]

let find name =
  match List.find_opt (fun w -> w.name = name) (all @ mixed_payoff) with
  | Some w -> w
  | None -> invalid_arg ("Workloads.find: unknown benchmark " ^ name)

let compute_intensive = List.filter (fun w -> w.wclass = Compute_intensive) all
let memory_intensive = List.filter (fun w -> w.wclass = Memory_intensive) all
