(** Benchmark registry: the paper's Table II.  Each workload provides
    its MiniC source (and MiniFortran where the paper evaluates both)
    at a default simulation-friendly scale, plus a fast [small] variant
    for tests. *)

type pattern = Loop | Divide_and_conquer | Depth_first_search

val pattern_to_string : pattern -> string

type workload_class = Compute_intensive | Memory_intensive

val class_to_string : workload_class -> string

type t = {
  name : string;
  description : string;
  amount : string;  (** the paper's data amount, for Table II *)
  pattern : pattern;
  wclass : workload_class;
  c_source : unit -> string;
  fortran_source : (unit -> string) option;
  small : unit -> string;
}

val all : t list

val mixed_payoff : t list
(** The policy engine's acceptance suite (not part of {!all}, so the
    paper-figure artifacts are unaffected): a conflict-bound workload
    where speculation never pays, an independent-chunk workload where
    it always does, and a store-free (expandable) reduction — no single
    static policy wins all three. *)

val find : string -> t
(** Looks up {!all} and {!mixed_payoff} by name. *)

val compute_intensive : t list
val memory_intensive : t list
