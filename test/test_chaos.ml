(* Chaos harness, fault injection, invariant oracle, and graceful
   degradation: the robustness layer built for `mutlsc chaos`.

   The important guarantee everywhere: whatever the fault schedule, the
   runtime survives and the TLS output equals the sequential output —
   injected faults only force the existing recovery paths (rollback,
   re-execution, sequential fallback), never wrong results. *)

module Config = Mutls_runtime.Config
module Fault = Mutls_runtime.Fault
module LB = Mutls_runtime.Local_buffer
module TM = Mutls_runtime.Thread_manager
module Stats = Mutls_runtime.Stats
module Trace = Mutls_obs.Trace
module Oracle = Mutls_obs.Oracle
module Eval = Mutls_interp.Eval
module Chaos = Mutls.Chaos

(* A chained-speculation loop with genuine cross-iteration conflicts
   (shared accumulator), exercising validation and rollback even with
   no faults injected. *)
let conflict_source =
  {|
int acc[4];
int out[10];
int main() {
  for (int c = 0; c < 10; c++) {
    __builtin_MUTLS_fork(0, mixed);
    acc[c % 4] = acc[c % 4] + c + 1;
    out[c] = acc[c % 4];
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < 10; c++) t = t + out[c];
  print_int(t + acc[0] + acc[1] + acc[2] + acc[3]);
  print_newline();
  return 0;
}
|}

let compile source = Mutls_speculator.Pass.run (Mutls_minic.Codegen.compile source)

let seq_output source =
  (Eval.run_sequential (Mutls_minic.Codegen.compile source)).Eval.soutput

(* A sink that records every event for post-hoc assertions. *)
let recording_sink () =
  let events = ref [] in
  ( events,
    {
      Trace.enabled = true;
      emit = (fun r -> events := r :: !events);
      close = (fun () -> ());
    } )

let run_with cfg source =
  let r = Eval.run_tls cfg (compile source) in
  (r, r.Eval.toutput)

(* --- fault injector ---------------------------------------------------- *)

let test_fault_determinism () =
  let plan = { Fault.validation = 0.3; overflow = 0.1; spurious = 0.5; nosync = 0.2; deny = 1.0; spill_exhaust = 0.0 } in
  let seq t = List.init 50 (fun _ -> Fault.fire t Fault.Validation_failure) in
  let a = Fault.create ~seed:7 plan in
  let b = Fault.create ~seed:7 plan in
  Alcotest.(check (list bool)) "same seed, same stream" (seq a) (seq b);
  let a' = Fault.create ~seed:7 plan in
  let c = Fault.create ~seed:8 plan in
  Alcotest.(check bool) "different seed differs" true (seq a' <> seq c)

let test_fault_site_isolation () =
  (* Zeroing one site's rate must not perturb another site's stream:
     rate-0 sites never draw from their RNG. *)
  let p1 = { Fault.validation = 0.5; overflow = 0.5; spurious = 0.0; nosync = 0.0; deny = 0.0; spill_exhaust = 0.0 } in
  let p2 = { p1 with Fault.overflow = 0.0 } in
  let drive t =
    List.init 40 (fun _ ->
        ignore (Fault.fire t Fault.Buffer_overflow);
        Fault.fire t Fault.Validation_failure)
  in
  let a = Fault.create ~seed:3 p1 and b = Fault.create ~seed:3 p2 in
  Alcotest.(check (list bool)) "validation stream unchanged" (drive a) (drive b);
  Alcotest.(check int) "zero-rate site fired nothing" 0
    (Fault.injected b Fault.Buffer_overflow)

let test_fault_rates () =
  let plan = { Fault.validation = 1.0; overflow = 0.0; spurious = 0.0; nosync = 0.0; deny = 0.0; spill_exhaust = 0.0 } in
  let t = Fault.create ~seed:1 plan in
  for _ = 1 to 20 do
    Alcotest.(check bool) "rate 1 always fires" true (Fault.fire t Fault.Validation_failure);
    Alcotest.(check bool) "rate 0 never fires" false (Fault.fire t Fault.Buffer_overflow)
  done;
  Alcotest.(check int) "injected count" 20 (Fault.injected t Fault.Validation_failure);
  Alcotest.(check int) "occasions count" 20 (Fault.occasions t Fault.Buffer_overflow);
  Alcotest.check_raises "bad rate rejected"
    (Invalid_argument
       "Fault.plan: buffer-overflow rate must be in [0, 1] (got 1.5)")
    (fun () -> Fault.validate_plan { plan with Fault.overflow = 1.5 })

(* Output stays sequential under every single-site schedule, including
   certainty (rate 1.0) — termination relies on failed speculation
   falling back to the parent's own re-execution. *)
let test_faults_preserve_output () =
  let expected = seq_output conflict_source in
  let sites =
    [
      (fun r -> { Fault.none with Fault.validation = r });
      (fun r -> { Fault.none with Fault.overflow = r });
      (fun r -> { Fault.none with Fault.spurious = r });
      (fun r -> { Fault.none with Fault.nosync = r });
      (fun r -> { Fault.none with Fault.deny = r });
    ]
  in
  List.iter
    (fun mk ->
      List.iter
        (fun rate ->
          let cfg =
            { Config.default with ncpus = 4; fault = Some (mk rate); seed = 11 }
          in
          let _, out = run_with cfg conflict_source in
          Alcotest.(check string)
            (Printf.sprintf "rate %g" rate)
            expected out)
        [ 0.3; 1.0 ])
    sites

(* Property: ANY fault schedule yields the sequential result. *)
let test_fault_schedule_property =
  QCheck.Test.make ~name:"any fault schedule yields sequential output" ~count:30
    QCheck.(
      quad (int_range 0 1000)
        (quad (int_range 0 10) (int_range 0 10) (int_range 0 10) (int_range 0 10))
        (int_range 0 10) (int_range 1 8))
    (fun (seed, (v, o, s, n), d, ncpus) ->
      let plan =
        {
          Fault.validation = float_of_int v /. 10.0;
          overflow = float_of_int o /. 10.0;
          spurious = float_of_int s /. 10.0;
          nosync = float_of_int n /. 10.0;
          deny = float_of_int d /. 10.0;
          spill_exhaust = 0.0;
        }
      in
      let cfg =
        { Config.default with ncpus; fault = Some plan; seed;
          backoff = (seed mod 2 = 0) }
      in
      let _, out = run_with cfg conflict_source in
      out = seq_output conflict_source)

(* --- overflow rollback path -------------------------------------------- *)

let test_overflow_rollback () =
  (* Tiny hash maps and no temporary buffer: genuine hash conflicts
     overflow immediately, rolling the speculative thread back; the
     parent re-executes and the run still completes correctly. *)
  let events, sink = recording_sink () in
  let cfg =
    { Config.default with ncpus = 4; buffer_slots = 2; temp_slots = 0; trace_sink = sink }
  in
  let r, out = run_with cfg conflict_source in
  Alcotest.(check string) "output survives overflow" (seq_output conflict_source) out;
  let overflows =
    List.fold_left
      (fun a (rt : TM.retired) -> a + Stats.count rt.TM.r_stats Stats.Overflows)
      0 r.Eval.tretired
  in
  Alcotest.(check bool) "at least one overflow rollback" true (overflows > 0);
  let ovf_events =
    List.filter
      (fun (e : Trace.record) ->
        match e.Trace.event with Trace.Overflow _ -> true | _ -> false)
      !events
  in
  let ovf_rollbacks =
    List.filter
      (fun (e : Trace.record) ->
        match e.Trace.event with
        | Trace.Rollback { reason = Trace.Buffer_overflow; _ } -> true
        | _ -> false)
      !events
  in
  Alcotest.(check int) "Overflow events match stat" overflows (List.length ovf_events);
  Alcotest.(check bool) "each overflow has a rollback" true
    (List.length ovf_rollbacks >= List.length ovf_events)

(* --- graceful degradation ---------------------------------------------- *)

let test_degradation () =
  (* Certain injected overflow + degrade_after=2: after two overflow
     rollbacks in a row the manager must stop speculating entirely. *)
  let events, sink = recording_sink () in
  let plan = { Fault.none with Fault.overflow = 1.0 } in
  let cfg =
    {
      Config.default with
      ncpus = 4;
      fault = Some plan;
      degrade_after = 2;
      trace_sink = sink;
      seed = 5;
    }
  in
  let r, out = run_with cfg conflict_source in
  Alcotest.(check string) "degraded run is correct" (seq_output conflict_source) out;
  Alcotest.(check bool) "manager degraded" true (TM.degraded r.Eval.tmgr);
  let degrades =
    List.filter
      (fun (e : Trace.record) ->
        match e.Trace.event with
        | Trace.Sched { what = "degrade"; _ } -> true
        | _ -> false)
      !events
  in
  Alcotest.(check int) "degrade announced once" 1 (List.length degrades)

let test_backoff () =
  (* Forced validation failures with backoff on: rollbacks at the fork
     point must announce growing skip penalties, and skipped forks keep
     the run correct. *)
  let events, sink = recording_sink () in
  let plan = { Fault.none with Fault.validation = 1.0 } in
  let cfg =
    { Config.default with ncpus = 4; fault = Some plan; backoff = true;
      trace_sink = sink; seed = 9 }
  in
  let _, out = run_with cfg conflict_source in
  Alcotest.(check string) "backoff run is correct" (seq_output conflict_source) out;
  let penalties =
    List.filter_map
      (fun (e : Trace.record) ->
        match e.Trace.event with
        | Trace.Sched { what = "backoff"; info } -> Some info
        | _ -> None)
      !events
  in
  Alcotest.(check bool) "backoff announced" true (penalties <> []);
  Alcotest.(check bool) "penalty grows" true
    (List.exists (fun p -> p > 1) penalties)

(* --- config validation ------------------------------------------------- *)

let test_config_validate () =
  Config.validate Config.default;
  let bad msg t = Alcotest.check_raises msg (Invalid_argument msg) (fun () -> Config.validate t) in
  bad "Config.ncpus must be >= 1 (got 0)" { Config.default with ncpus = 0 };
  bad "Config.buffer_slots must be a positive power of two (got 3)"
    { Config.default with buffer_slots = 3 };
  bad "Config.buffer_slots must be a positive power of two (got 0)"
    { Config.default with buffer_slots = 0 };
  bad "Config.temp_slots must be non-negative (got -1)"
    { Config.default with temp_slots = -1 };
  bad "Config.rollback_probability must be in [0, 1] (got 2)"
    { Config.default with rollback_probability = 2.0 };
  bad "Config.degrade_after must be non-negative (got -3)"
    { Config.default with degrade_after = -3 };
  bad "Config.cost.instr must be non-negative (got -1)"
    { Config.default with cost = { Config.default.cost with instr = -1.0 } };
  (* Thread_manager.create validates too *)
  Alcotest.check_raises "create validates"
    (Invalid_argument "Config.ncpus must be >= 1 (got 0)") (fun () ->
      ignore (Eval.run_tls { Config.default with ncpus = 0 } (compile conflict_source)))

(* --- Local_buffer.Unset narrowing -------------------------------------- *)

let test_local_buffer_unset () =
  let lb = LB.create ~max_locals:4 in
  let frame = LB.push_frame lb in
  (match LB.get_reg frame lb 2 with
  | _ -> Alcotest.fail "expected Unset"
  | exception LB.Unset _ -> ());
  (* out-of-range offsets are API misuse, not misspeculation *)
  (match LB.get_reg frame lb 99 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()
  | exception LB.Unset _ -> Alcotest.fail "out of range must not be Unset")

(* --- oracle ------------------------------------------------------------ *)

let rec_at ?(thread = 1) ?(rank = 1) time event =
  { Trace.time; thread; rank; main = (thread = 0); event }

let fork_child ?(time = 0.0) ~parent ~child ~rank () =
  { Trace.time; thread = parent; rank = 0; main = (parent = 0);
    event = Trace.Fork { child; child_rank = rank; point = 0 } }

let test_oracle_clean_stream () =
  let t = Oracle.create ~halt:false () in
  let feed = Oracle.feed t in
  feed (fork_child ~parent:0 ~child:1 ~rank:1 ());
  feed (rec_at 1.0 (Trace.Validate { words = 1; ok = true; addr = None }));
  feed (rec_at 2.0 (Trace.Charge { category = "finalize"; cost = 1.0 }));
  feed (rec_at 2.0 (Trace.Commit { words = 1; counter = 1 }));
  feed
    (rec_at ~thread:0 ~rank:0 3.0 (Trace.Join { child = 1; committed = true }));
  feed
    (rec_at 4.0
       (Trace.Retire { committed = true; runtime = 3.0; stats = [] }));
  Oracle.finish t;
  Alcotest.(check int) "no violations" 0 (List.length (Oracle.violations t));
  Alcotest.(check bool) "records checked" true (Oracle.checked t > 0)

let violations_of records =
  let t = Oracle.create ~halt:false () in
  List.iter (Oracle.feed t) records;
  Oracle.finish t;
  List.map (fun (v : Oracle.violation) -> v.Oracle.invariant) (Oracle.violations t)

let test_oracle_catches_violations () =
  (* commit without a successful validation *)
  Alcotest.(check (list string)) "commit without validate"
    [ "commit-without-validate" ]
    (violations_of
       [
         fork_child ~parent:0 ~child:1 ~rank:1 ();
         rec_at 1.0 (Trace.Charge { category = "finalize"; cost = 1.0 });
         rec_at 1.0 (Trace.Commit { words = 1; counter = 1 });
         rec_at ~thread:0 ~rank:0 2.0 (Trace.Join { child = 1; committed = true });
         rec_at 3.0 (Trace.Retire { committed = true; runtime = 3.0; stats = [] });
       ]);
  (* rollback Conflict requires a failed validation *)
  Alcotest.(check (list string)) "conflict rollback needs failed validate"
    [ "rollback-without-failed-validate" ]
    (violations_of
       [
         fork_child ~parent:0 ~child:1 ~rank:1 ();
         rec_at 1.0 (Trace.Validate { words = 1; ok = true; addr = None });
         rec_at 2.0 (Trace.Rollback { reason = Trace.Conflict; point = 0 });
         rec_at 2.0 (Trace.Charge { category = "finalize"; cost = 1.0 });
         rec_at ~thread:0 ~rank:0 3.0 (Trace.Join { child = 1; committed = false });
         rec_at 4.0 (Trace.Retire { committed = false; runtime = 3.0; stats = [] });
       ]);
  (* join verdict must match the child's commit/rollback *)
  Alcotest.(check (list string)) "join verdict mismatch"
    [ "join-verdict-mismatch" ]
    (violations_of
       [
         fork_child ~parent:0 ~child:1 ~rank:1 ();
         rec_at 1.0 (Trace.Validate { words = 1; ok = true; addr = None });
         rec_at 2.0 (Trace.Charge { category = "finalize"; cost = 1.0 });
         rec_at 2.0 (Trace.Commit { words = 1; counter = 1 });
         rec_at ~thread:0 ~rank:0 3.0 (Trace.Join { child = 1; committed = false });
         rec_at 4.0 (Trace.Retire { committed = true; runtime = 3.0; stats = [] });
       ]);
  (* a thread that was never retired leaks *)
  Alcotest.(check (list string)) "leaked thread"
    [ "unretired-thread" ]
    (violations_of [ fork_child ~parent:0 ~child:1 ~rank:1 () ]);
  (* halt mode raises with a counterexample window *)
  let t = Oracle.create ~halt:true () in
  Oracle.feed t (fork_child ~parent:0 ~child:1 ~rank:1 ());
  Alcotest.(check bool) "halt raises" true
    (match
       Oracle.feed t (rec_at 1.0 (Trace.Commit { words = 1; counter = 1 }))
     with
    | () -> false
    | exception Oracle.Violation v ->
      v.Oracle.invariant = "commit-without-validate" && v.Oracle.window <> [])

(* An Overflow record claiming a spill-tier capacity is legal only once
   the thread really filled the tier — at least [cap] Spill records. *)
let test_oracle_spill_exhaustion () =
  let thread_records ~spills ~cap =
    [ fork_child ~parent:0 ~child:1 ~rank:1 () ]
    @ List.init spills (fun i ->
          rec_at
            (1.0 +. float_of_int i)
            (Trace.Spill { addr = 0x100 + (8 * i) }))
    @ [
        rec_at 10.0 (Trace.Overflow { spill_cap = cap });
        rec_at 10.0 (Trace.Rollback { reason = Trace.Buffer_overflow; point = 0 });
        rec_at 10.0 (Trace.Charge { category = "finalize"; cost = 1.0 });
        rec_at ~thread:0 ~rank:0 11.0 (Trace.Join { child = 1; committed = false });
        rec_at 12.0 (Trace.Retire { committed = false; runtime = 3.0; stats = [] });
      ]
  in
  Alcotest.(check (list string)) "premature overflow flagged"
    [ "overflow-before-spill-exhaustion" ]
    (violations_of (thread_records ~spills:2 ~cap:4));
  Alcotest.(check (list string)) "exhausted tier is legal" []
    (violations_of (thread_records ~spills:4 ~cap:4));
  Alcotest.(check (list string)) "tier off carries no capacity claim" []
    (violations_of (thread_records ~spills:0 ~cap:0))

(* The Spill_exhaust fault site: injected spill-tier exhaustion forces
   the overflow rollback path even though the tier has room.  Output
   must stay sequential, and certainty must degrade to the fallback. *)
let test_spill_exhaust_fault () =
  let expected = seq_output conflict_source in
  List.iter
    (fun rate ->
      let cfg =
        {
          Config.default with
          ncpus = 4;
          fault = Some { Fault.none with Fault.spill_exhaust = rate };
          degrade_after = 4;
          seed = 11;
          buffers =
            { Config.Buffers.default with Config.Buffers.spill_slots = 64 };
        }
      in
      let r, out = run_with cfg conflict_source in
      Alcotest.(check string) (Printf.sprintf "output (rate %.2f)" rate)
        expected out;
      if rate = 1.0 then
        Alcotest.(check bool) "certainty degrades to sequential" true
          (TM.degraded r.Eval.tmgr))
    [ 0.5; 1.0 ]

let test_oracle_on_real_runs () =
  (* The oracle attached to genuinely chaotic runs must stay silent. *)
  List.iter
    (fun seed ->
      let oracle = Oracle.create ~halt:false () in
      let plan =
        { Fault.validation = 0.4; overflow = 0.2; spurious = 0.3; nosync = 0.2; deny = 0.2; spill_exhaust = 0.0 }
      in
      let cfg =
        {
          Config.default with
          ncpus = 6;
          fault = Some plan;
          backoff = true;
          degrade_after = 4;
          seed;
          trace_sink = Oracle.sink oracle;
        }
      in
      let _, out = run_with cfg conflict_source in
      Oracle.finish oracle;
      Alcotest.(check string) "output" (seq_output conflict_source) out;
      Alcotest.(check (list string))
        (Printf.sprintf "oracle silent (seed %d)" seed)
        []
        (List.map
           (fun (v : Oracle.violation) -> Oracle.violation_to_string v)
           (Oracle.violations oracle)))
    [ 1; 2; 3 ]

(* --- chaos library ----------------------------------------------------- *)

let test_chaos_case_determinism () =
  let a = Chaos.gen_case ~seed:99 5 and b = Chaos.gen_case ~seed:99 5 in
  Alcotest.(check bool) "gen_case is pure" true (a = b);
  let ra = Chaos.run_case a and rb = Chaos.run_case b in
  Alcotest.(check bool) "run_case replays identically" true (ra = rb);
  Alcotest.(check bool) "different index differs" true
    (Chaos.gen_case ~seed:99 6 <> a)

let test_chaos_json_roundtrip () =
  let case = Chaos.gen_case ~seed:4 2 in
  let j = Chaos.case_to_json case in
  Alcotest.(check bool) "bare case" true (Chaos.case_of_json j = case);
  let r = Chaos.run_case case in
  let repro = Chaos.repro_to_json ~campaign_seed:4 case r in
  let reparsed = Chaos.case_of_json (Mutls.Json.of_string (Mutls.Json.to_string repro)) in
  Alcotest.(check bool) "repro wire round trip" true (reparsed = case)

(* The overflow-pressure storm band: find a generated case drawn from
   the storm template and run it — the working set dwarfs the shrunken
   buffers, so the case exercises parks, spills or genuine overflow,
   and must still match sequential output under the oracle. *)
let test_chaos_storm_band () =
  let rec find i =
    if i > 100 then Alcotest.fail "no storm case within 100 draws"
    else
      let c = Chaos.gen_case ~seed:77 i in
      if c.Chaos.shape.Chaos.template = 3 then c else find (i + 1)
  in
  let case = find 0 in
  Alcotest.(check string) "band name" "storm"
    (Chaos.template_name case.Chaos.shape.Chaos.template);
  let r = Chaos.run_case case in
  (match r.Chaos.failure with
  | None -> ()
  | Some f -> Alcotest.failf "storm case failed: %s" (Chaos.failure_to_string f));
  Alcotest.(check string) "storm output matches sequential" r.Chaos.expected
    r.Chaos.actual

let test_chaos_campaign () =
  let c = Chaos.run_campaign ~seed:2026 ~runs:12 () in
  Alcotest.(check int) "all cases pass" 12 c.Chaos.passed;
  Alcotest.(check bool) "no failure" true (c.Chaos.failed = None);
  Alcotest.(check bool) "faults actually injected" true (c.Chaos.injected_total > 0)

let tests =
  [
    Alcotest.test_case "fault determinism" `Quick test_fault_determinism;
    Alcotest.test_case "fault site isolation" `Quick test_fault_site_isolation;
    Alcotest.test_case "fault rates" `Quick test_fault_rates;
    Alcotest.test_case "faults preserve output" `Quick test_faults_preserve_output;
    QCheck_alcotest.to_alcotest test_fault_schedule_property;
    Alcotest.test_case "overflow rollback path" `Quick test_overflow_rollback;
    Alcotest.test_case "graceful degradation" `Quick test_degradation;
    Alcotest.test_case "per-fork-point backoff" `Quick test_backoff;
    Alcotest.test_case "config validation" `Quick test_config_validate;
    Alcotest.test_case "local buffer unset" `Quick test_local_buffer_unset;
    Alcotest.test_case "oracle accepts clean stream" `Quick test_oracle_clean_stream;
    Alcotest.test_case "oracle catches violations" `Quick test_oracle_catches_violations;
    Alcotest.test_case "oracle spill-tier exhaustion rule" `Quick
      test_oracle_spill_exhaustion;
    Alcotest.test_case "spill-exhaust fault site" `Quick test_spill_exhaust_fault;
    Alcotest.test_case "oracle silent on real runs" `Quick test_oracle_on_real_runs;
    Alcotest.test_case "chaos case determinism" `Quick test_chaos_case_determinism;
    Alcotest.test_case "chaos json round trip" `Quick test_chaos_json_roundtrip;
    Alcotest.test_case "chaos storm band" `Quick test_chaos_storm_band;
    Alcotest.test_case "chaos campaign" `Quick test_chaos_campaign;
  ]
