(* The compiled execution engine (Compile, behind Eval) versus the
   retained tree-walking reference interpreter (Reference): shared
   scalar semantics, agreement on random programs, and the crown
   invariant — same-seed runs produce identical outputs, bit-identical
   virtual times and byte-identical traces across the engine swap. *)

module Ir = Mutls_mir.Ir
module V = Mutls_interp.Value
module Ops = Mutls_interp.Ops
module Eval = Mutls_interp.Eval
module Reference = Mutls_interp.Reference
module Stats = Mutls_runtime.Stats
module Config = Mutls_runtime.Config
module Trace = Mutls_obs.Trace
module Report = Mutls_obs.Report

(* --- Ops: specializers agree pointwise with direct evaluation ---------- *)

let int_tys = [ Ir.I1; Ir.I8; Ir.I32; Ir.I64; Ir.Ptr ]
let all_tys = [ Ir.I1; Ir.I8; Ir.I32; Ir.I64; Ir.F64; Ir.Ptr ]

let int_binops =
  [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Sdiv; Ir.Srem; Ir.And; Ir.Or; Ir.Xor;
    Ir.Shl; Ir.Lshr; Ir.Ashr ]

let float_binops = [ Ir.Fadd; Ir.Fsub; Ir.Fmul; Ir.Fdiv ]
let icmps = [ Ir.Ieq; Ir.Ine; Ir.Islt; Ir.Isle; Ir.Isgt; Ir.Isge ]
let fcmps = [ Ir.Feq; Ir.Fne; Ir.Flt; Ir.Fle; Ir.Fgt; Ir.Fge ]

let casts =
  [ Ir.Trunc; Ir.Zext; Ir.Sext; Ir.Fptosi; Ir.Sitofp; Ir.Ptrtoint;
    Ir.Inttoptr; Ir.Bitcast ]

let raw_ints =
  [ 0L; 1L; 2L; 3L; 7L; 63L; 64L; 127L; 128L; 255L; 256L; 0x7FFFFFFFL;
    0x80000000L; 0xFFFFFFFFL; 0x100000000L; -1L; -128L; -12345L;
    Int64.max_int; Int64.min_int ]

let floats =
  [ 0.0; -0.0; 1.0; -1.5; 3.25; 1e300; -1e-300; infinity; neg_infinity; nan ]

(* Both engines keep sub-word payloads canonical (zero-extended), so
   pointwise agreement is over canonical representations. *)
let canon ty n = V.truncate_to ty n

let outcome f =
  match f () with v -> Ok v | exception Ops.Trap m -> Error m

let same_outcome what a b =
  let show = function
    | Ok v -> "Ok " ^ V.to_string v
    | Error m -> "Trap " ^ m
  in
  if compare a b <> 0 then
    Alcotest.failf "%s: %s <> %s" what (show a) (show b)

let test_binop_specializers () =
  List.iter
    (fun op ->
      List.iter
        (fun ty ->
          let f = Ops.binop_fn op ty in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let x = V.VI (canon ty a) and y = V.VI (canon ty b) in
                  same_outcome "binop"
                    (outcome (fun () -> Ops.eval_binop op ty x y))
                    (outcome (fun () -> f x y)))
                raw_ints)
            raw_ints)
        int_tys)
    int_binops;
  List.iter
    (fun op ->
      let f = Ops.binop_fn op Ir.F64 in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let x = V.VF a and y = V.VF b in
              same_outcome "float binop"
                (outcome (fun () -> Ops.eval_binop op Ir.F64 x y))
                (outcome (fun () -> f x y)))
            floats)
        floats)
    float_binops

let test_icmp_fcmp_specializers () =
  List.iter
    (fun op ->
      List.iter
        (fun ty ->
          let f = Ops.icmp_fn op ty in
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let x = V.VI (canon ty a) and y = V.VI (canon ty b) in
                  same_outcome "icmp"
                    (outcome (fun () -> Ops.eval_icmp op ty x y))
                    (outcome (fun () -> f x y)))
                raw_ints)
            raw_ints)
        int_tys)
    icmps;
  List.iter
    (fun op ->
      let f = Ops.fcmp_fn op in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let x = V.VF a and y = V.VF b in
              same_outcome "fcmp"
                (outcome (fun () -> Ops.eval_fcmp op x y))
                (outcome (fun () -> f x y)))
            floats)
        floats)
    fcmps

let test_cast_specializers () =
  List.iter
    (fun c ->
      List.iter
        (fun from_ty ->
          List.iter
            (fun to_ty ->
              let f = Ops.cast_fn c from_ty to_ty in
              let wants_float =
                c = Ir.Fptosi || (c = Ir.Bitcast && from_ty = Ir.F64)
              in
              let inputs =
                if wants_float then
                  (* keep NaN out of Fptosi: Int64.of_float nan is
                     unspecified, not a semantics we pin down *)
                  List.map (fun x -> V.VF x)
                    (List.filter (fun x -> x = x) floats)
                else List.map (fun n -> V.VI (canon from_ty n)) raw_ints
              in
              List.iter
                (fun v ->
                  same_outcome "cast"
                    (outcome (fun () -> Ops.eval_cast c from_ty to_ty v))
                    (outcome (fun () -> f v)))
                inputs)
            all_tys)
        all_tys)
    casts

(* --- widened (unboxed) specializers agree with direct evaluation ------- *)

(* The register-bank engine inlines [binop_i]/[icmp_i]/[fcmp_f]
   semantics; this pins the raw int64/float variants to [eval_*]
   pointwise, traps included, on canonical inputs. *)
let test_widened_specializers () =
  List.iter
    (fun op ->
      List.iter
        (fun ty ->
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let x = canon ty a and y = canon ty b in
                  same_outcome "binop_i"
                    (outcome (fun () -> Ops.eval_binop op ty (V.VI x) (V.VI y)))
                    (outcome (fun () -> V.VI (Ops.binop_i op ty x y))))
                raw_ints)
            raw_ints)
        int_tys)
    int_binops;
  List.iter
    (fun op ->
      List.iter
        (fun ty ->
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  let x = canon ty a and y = canon ty b in
                  same_outcome "icmp_i"
                    (outcome (fun () -> Ops.eval_icmp op ty (V.VI x) (V.VI y)))
                    (outcome (fun () -> V.VI (Ops.icmp_i op ty x y))))
                raw_ints)
            raw_ints)
        int_tys)
    icmps;
  List.iter
    (fun op ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              same_outcome "fcmp_f"
                (outcome (fun () -> Ops.eval_fcmp op (V.VF a) (V.VF b)))
                (outcome (fun () -> V.VI (Ops.fcmp_f op a b))))
            floats)
        floats)
    fcmps;
  List.iter
    (fun op ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              same_outcome "binop_f"
                (outcome (fun () -> Ops.eval_binop op Ir.F64 (V.VF a) (V.VF b)))
                (outcome (fun () -> V.VF (Ops.binop_f op a b))))
            floats)
        floats)
    float_binops

(* --- sub-word truncation of Lshr/And/Or (the historic gap) ------------- *)

let vi = function
  | V.VI n -> n
  | V.VF _ -> Alcotest.fail "expected an integer"

let check_i64 what expected got =
  Alcotest.(check int64) what expected (vi got)

let test_subword_truncation () =
  (* results must come out canonical even from non-canonical payloads *)
  check_i64 "i8 and" 0xFFL (Ops.eval_binop Ir.And Ir.I8 (V.VI 0x1FFL) (V.VI 0x1FFL));
  check_i64 "i32 or" 3L
    (Ops.eval_binop Ir.Or Ir.I32 (V.VI 0x100000001L) (V.VI 2L));
  check_i64 "i8 lshr" 0L (Ops.eval_binop Ir.Lshr Ir.I8 (V.VI 0xF00L) (V.VI 0L));
  check_i64 "i32 lshr" 0x7FFFFFFFL
    (Ops.eval_binop Ir.Lshr Ir.I32 (V.VI 0xFFFFFFFFL) (V.VI 1L));
  (* canonical-input shift/bitwise behaviour on i32/i8 *)
  check_i64 "i32 shl wraps" 0L
    (Ops.eval_binop Ir.Shl Ir.I32 (V.VI 0x80000000L) (V.VI 1L));
  check_i64 "i32 ashr sign-fills" 0xFFFFFFFFL
    (Ops.eval_binop Ir.Ashr Ir.I32 (V.VI 0x80000000L) (V.VI 31L));
  check_i64 "i8 shl wraps" 0x54L
    (Ops.eval_binop Ir.Shl Ir.I8 (V.VI 0xAAL) (V.VI 1L));
  check_i64 "i8 ashr sign-fills" 0xFEL
    (Ops.eval_binop Ir.Ashr Ir.I8 (V.VI 0x80L) (V.VI 6L));
  check_i64 "i32 xor stays canonical" 0xFFFFFFFFL
    (Ops.eval_binop Ir.Xor Ir.I32 (V.VI 0x55555555L) (V.VI 0xAAAAAAAAL))

(* --- malformed programs trap cleanly in both engines ------------------- *)

let empty_func term insts =
  let f =
    { Ir.fname = "main"; params = []; ret = Ir.I64; blocks = [];
      next_reg = 1; reg_tys = Hashtbl.create 4 }
  in
  f.Ir.blocks <- [ { Ir.bname = "entry"; phis = []; insts; term } ];
  let m = Ir.create_module () in
  m.Ir.funcs <- [ f ];
  m

let expect_trap msg run =
  Alcotest.check_raises msg (Ops.Trap msg) (fun () -> ignore (run ()))

let test_trap_unknown_function () =
  let m = Ir.create_module () in
  expect_trap "call to unknown function @main" (fun () ->
      Eval.run_sequential m);
  expect_trap "call to unknown function @main" (fun () ->
      Reference.run_sequential m)

let test_trap_unknown_callee () =
  let m =
    empty_func
      (Ir.Ret (Some (Ir.i64 0)))
      [ { Ir.id = 0; ity = Ir.I64; kind = Ir.Call ("nosuch", []) } ]
  in
  expect_trap "call to unknown extern @nosuch" (fun () ->
      Eval.run_sequential m);
  expect_trap "call to unknown extern @nosuch" (fun () ->
      Reference.run_sequential m)

let test_trap_unknown_block () =
  let m = empty_func (Ir.Br "nowhere") [] in
  expect_trap "unknown block nowhere in @main" (fun () ->
      Eval.run_sequential m);
  expect_trap "unknown block nowhere in @main" (fun () ->
      Reference.run_sequential m)

(* --- random programs: compiled == reference, including total cost ------ *)

let test_random_agreement =
  QCheck.Test.make ~name:"compiled == reference on random programs" ~count:60
    (QCheck.pair Test_properties.arb_expr
       (QCheck.quad (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)
          (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)))
    (fun (expr, (a, b, c, d)) ->
      let src =
        Printf.sprintf
          "int main() { int v0 = %d; int v1 = %d; int v2 = %d; int v3 = %d;\n\
          \  int r = %s; print_int(r); print_newline(); return r; }" a b c d
          (Test_properties.pp expr)
      in
      let m = Mutls_minic.Codegen.compile src in
      let r1 = Eval.run_sequential m in
      let r2 = Reference.run_sequential m in
      r1.Eval.sret = r2.Eval.sret
      && r1.Eval.soutput = r2.Eval.soutput
      && r1.Eval.scost = r2.Eval.scost)
  |> QCheck_alcotest.to_alcotest

(* --- random programs biased at the bank boundaries --------------------- *)

(* The register banks split values by static type: i8/i32 sub-word
   arithmetic (masking and sign-extension on the int bank) and double
   bodies (the float bank, plus the casts that cross over) are exactly
   where a banked lowering can diverge from the boxed engines — so
   bias generation toward them. *)
let gen_typed_stmt =
  let open QCheck.Gen in
  let v = int_range 0 2 in
  oneof
    [ map3 (fun i j k -> Printf.sprintf "c%d = c%d + %d;" i j k) v v
        (int_range (-300) 300);
      map3 (fun i j k -> Printf.sprintf "c%d = c%d * c%d;" i j k) v v v;
      map3 (fun i j k -> Printf.sprintf "c%d = (char)(w%d ^ c%d);" i j k) v v v;
      map3 (fun i j k -> Printf.sprintf "w%d = w%d + w%d;" i j k) v v v;
      map3 (fun i j k -> Printf.sprintf "w%d = w%d * %d;" i j k) v v
        (int_range (-100000) 100000);
      map3 (fun i j s -> Printf.sprintf "w%d = w%d << %d;" i j s) v v
        (int_range 0 7);
      map3 (fun i j k -> Printf.sprintf "w%d = (int32)(c%d - w%d);" i j k) v v v;
      map3 (fun i j k -> Printf.sprintf "d%d = d%d * d%d;" i j k) v v v;
      map3 (fun i j k -> Printf.sprintf "d%d = d%d - d%d;" i j k) v v v;
      map2 (fun i j -> Printf.sprintf "d%d = d%d + 0.125;" i j) v v;
      map3 (fun i j k -> Printf.sprintf "d%d = (double)(c%d + w%d);" i j k) v v v;
      map3 (fun i j k -> Printf.sprintf "v0 = v0 + w%d * c%d + %d;" i j k) v v
        (int_range (-50) 50);
      map2 (fun i j -> Printf.sprintf "v0 = v0 ^ (c%d < w%d);" i j) v v ]

let arb_typed_body =
  QCheck.make
    ~print:(fun l -> String.concat "\n" l)
    QCheck.Gen.(list_size (int_range 5 30) gen_typed_stmt)

let test_random_bank_boundaries =
  QCheck.Test.make
    ~name:"compiled == reference on sub-word/float-heavy programs" ~count:60
    arb_typed_body
    (fun stmts ->
      let src =
        Printf.sprintf
          "int main() {\n\
          \  char c0 = 'a'; char c1 = 'M'; char c2 = 7;\n\
          \  int32 w0 = 123; int32 w1 = -45; int32 w2 = 2147480001;\n\
          \  double d0 = 1.5; double d1 = -2.25; double d2 = 0.5;\n\
          \  int v0 = 9;\n\
          \  %s\n\
          \  print_int(v0); print_int(c0 + c1 + c2); print_int(w0 + w1 + w2);\n\
          \  print_float(d0); print_float(d1); print_float(d2);\n\
          \  print_newline(); return v0; }"
          (String.concat "\n  " stmts)
      in
      let m = Mutls_minic.Codegen.compile src in
      let r1 = Eval.run_sequential m in
      let r2 = Reference.run_sequential m in
      r1.Eval.sret = r2.Eval.sret
      && r1.Eval.soutput = r2.Eval.soutput
      && r1.Eval.scost = r2.Eval.scost)
  |> QCheck_alcotest.to_alcotest

(* --- the unboxed hot path really does not allocate --------------------- *)

(* A straight-line integer loop body runs entirely in the register
   banks: beyond the fixed per-run setup (frame image, memory, output
   buffer) it must allocate ~0 minor words per executed instruction.
   The boxed engine allocates 2+ words per arithmetic result, so this
   fails loudly if the banked path stops engaging. *)
let test_allocation_budget () =
  let iters = 20000 in
  let src =
    Printf.sprintf
      "int main() { int v = 1; int a = 3; int i = 0;\n\
      \  while (i < %d) {\n\
      \    v = v * 3 + 1; a = (a ^ v) + 7; v = v - (a & 1023);\n\
      \    a = a * 5 + v; v = v | 1; i = i + 1;\n\
      \  }\n\
      \  print_int(v); print_newline(); return 0; }"
      iters
  in
  let m = Mutls_minic.Codegen.compile src in
  let p = Eval.prepare m in
  ignore (Eval.run_sequential_prepared p) (* warm-up *);
  let w0 = Gc.minor_words () in
  ignore (Eval.run_sequential_prepared p);
  let w1 = Gc.minor_words () in
  (* ~9 executed instructions per iteration; generous fixed allowance
     for the per-run setup *)
  let per_instr = (w1 -. w0) /. float_of_int (iters * 9) in
  if per_instr > 0.25 then
    Alcotest.failf "hot path allocates %.3f minor words per instruction"
      per_instr

(* --- engine swap is unobservable on the paper's workloads -------------- *)

let transformed_workload name =
  let w = Mutls_workloads.Workloads.find name in
  let m = Mutls_minic.Codegen.compile (w.Mutls_workloads.Workloads.c_source ()) in
  (m, Mutls_speculator.Pass.run m)

let check_tls_equivalent ~ncpus name =
  let _, t = transformed_workload name in
  let cfg = { Config.default with ncpus } in
  let r1 = Eval.run_tls cfg t in
  let r2 = Reference.run_tls cfg t in
  Alcotest.(check string) (name ^ " output") r2.Eval.toutput r1.Eval.toutput;
  Alcotest.(check (float 0.0)) (name ^ " finish time (bit-identical)")
    r2.Eval.tfinish r1.Eval.tfinish;
  Alcotest.(check int) (name ^ " retired threads")
    (List.length r2.Eval.tretired)
    (List.length r1.Eval.tretired);
  Alcotest.(check (list (pair string (float 0.0))))
    (name ^ " main stats (bit-identical)")
    (Stats.to_assoc r2.Eval.tmain_stats)
    (Stats.to_assoc r1.Eval.tmain_stats)

let test_tls_equivalence_3x1 () = check_tls_equivalent ~ncpus:4 "3x+1"
let test_tls_equivalence_fft () = check_tls_equivalent ~ncpus:8 "fft"

let test_seq_cost_identical () =
  let m, _ = transformed_workload "3x+1" in
  let r1 = Eval.run_sequential m in
  let r2 = Reference.run_sequential m in
  Alcotest.(check (float 0.0)) "sequential cost (bit-identical)"
    r2.Eval.scost r1.Eval.scost

(* Same seed, same program: the JSONL trace streams of the two engines
   must be byte-identical — every Charge flush, fork, commit and
   rollback lands at the same virtual time in the same order. *)
let traced_run run_tls t ncpus =
  let b = Buffer.create 65536 in
  let sink = Trace.jsonl (Buffer.add_string b) in
  let cfg = { Config.default with ncpus; trace_sink = sink } in
  let r = run_tls cfg t in
  Trace.close sink;
  (r, Buffer.contents b)

let test_trace_byte_identical () =
  let _, t = transformed_workload "3x+1" in
  let _, tr1 = traced_run (fun cfg t -> Eval.run_tls cfg t) t 4 in
  let _, tr2 = traced_run (fun cfg t -> Reference.run_tls cfg t) t 4 in
  Alcotest.(check bool) "trace non-empty" true (String.length tr1 > 0);
  Alcotest.(check string) "engine swap leaves trace byte-identical" tr2 tr1

(* Fig. 8/9 regression: a Report folded from the compiled engine's
   trace still reproduces the in-process Stats accounting. *)
let test_report_matches_stats_compiled () =
  let _, t = transformed_workload "3x+1" in
  let r, tr = traced_run (fun cfg t -> Eval.run_tls cfg t) t 4 in
  let rep = Report.of_jsonl tr in
  let close_enough what a b =
    let tol = 1e-6 *. (1.0 +. abs_float a +. abs_float b) in
    if abs_float (a -. b) > tol then Alcotest.failf "%s: %g <> %g" what a b
  in
  close_enough "crit_total" (Stats.total r.Eval.tmain_stats)
    rep.Report.crit_total;
  close_enough "runtime" r.Eval.tfinish rep.Report.runtime

(* --- prepared programs: prepare once, run many ------------------------- *)

let test_prepared_reuse () =
  let m, t = transformed_workload "3x+1" in
  let p = Eval.prepare m in
  let direct = Eval.run_sequential m in
  let prepared = Eval.run_sequential_prepared p in
  Alcotest.(check string) "prepared seq output" direct.Eval.soutput
    prepared.Eval.soutput;
  Alcotest.(check (float 0.0)) "prepared seq cost" direct.Eval.scost
    prepared.Eval.scost;
  let pt = Eval.prepare t in
  List.iter
    (fun ncpus ->
      let cfg = { Config.default with ncpus } in
      let r1 = Eval.run_tls cfg t in
      let r2 = Eval.run_tls_prepared cfg pt in
      Alcotest.(check string)
        (Printf.sprintf "prepared tls output @%d" ncpus)
        r1.Eval.toutput r2.Eval.toutput;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "prepared tls finish @%d" ncpus)
        r1.Eval.tfinish r2.Eval.tfinish)
    [ 1; 4 ]

let tests =
  [
    Alcotest.test_case "binop specializers == direct eval" `Quick
      test_binop_specializers;
    Alcotest.test_case "icmp/fcmp specializers == direct eval" `Quick
      test_icmp_fcmp_specializers;
    Alcotest.test_case "cast specializers == direct eval" `Quick
      test_cast_specializers;
    Alcotest.test_case "widened specializers == direct eval" `Quick
      test_widened_specializers;
    Alcotest.test_case "sub-word lshr/and/or truncate" `Quick
      test_subword_truncation;
    Alcotest.test_case "unknown function traps cleanly" `Quick
      test_trap_unknown_function;
    Alcotest.test_case "unknown callee traps cleanly" `Quick
      test_trap_unknown_callee;
    Alcotest.test_case "unknown block traps cleanly" `Quick
      test_trap_unknown_block;
    test_random_agreement;
    test_random_bank_boundaries;
    Alcotest.test_case "hot path allocation budget" `Quick
      test_allocation_budget;
    Alcotest.test_case "sequential cost bit-identical" `Quick
      test_seq_cost_identical;
    Alcotest.test_case "TLS equivalence (3x+1)" `Quick
      test_tls_equivalence_3x1;
    Alcotest.test_case "TLS equivalence (fft)" `Quick test_tls_equivalence_fft;
    Alcotest.test_case "trace byte-identical across engines" `Quick
      test_trace_byte_identical;
    Alcotest.test_case "report matches stats (compiled)" `Quick
      test_report_matches_stats_compiled;
    Alcotest.test_case "prepared programs reusable" `Quick test_prepared_reuse;
  ]
