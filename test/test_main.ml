let () =
  Alcotest.run "mutls"
    [
      ("sim", Test_sim.tests);
      ("mir", Test_mir.tests);
      ("interp", Test_interp.tests);
      ("engine", Test_engine.tests);
      ("speculator", Test_speculator.tests);
      ("runtime", Test_runtime.tests);
      ("end_to_end", Test_end_to_end.tests);
      ("minic", Test_minic.tests);
      ("fortran", Test_fortran.tests);
      ("fortran_more", Test_fortran_more.tests);
      ("workloads", Test_workloads.tests);
      ("extensions", Test_extensions.tests);
      ("obs", Test_obs.tests);
      ("telemetry", Test_telemetry.tests);
      ("spans", Test_spans.tests);
      ("properties", Test_properties.tests);
      ("opt", Test_opt.tests);
      ("parse", Test_parse.tests);
      ("chaos", Test_chaos.tests);
      ("policy", Test_policy.tests);
      ("par", Test_par.tests);
    ]
