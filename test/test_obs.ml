(* Observability layer: trace determinism, the bounded ring sink, JSON
   round-trips, and the central cross-check — a Report folded from a
   trace reproduces the in-process Stats/Metrics accounting. *)

module Trace = Mutls_obs.Trace
module Report = Mutls_obs.Report
module Json = Mutls_obs.Json
module Stats = Mutls_runtime.Stats

(* Run one built-in benchmark under TLS with the given sink. *)
let run_traced ?(ncpus = 8) ~sink name =
  let w = Mutls.Workloads.find name in
  let m = Mutls.compile Mutls.C (w.Mutls.Workloads.c_source ()) in
  let t = Mutls.speculate m in
  let cfg = { Mutls.Config.default with ncpus; trace_sink = sink } in
  Mutls.run_tls cfg t

let close_enough what a b =
  let tol = 1e-6 *. (1.0 +. abs_float a +. abs_float b) in
  if abs_float (a -. b) > tol then
    Alcotest.failf "%s: %.12g <> %.12g" what a b

(* --- determinism -------------------------------------------------------- *)

(* Same seed, same program: the JSONL trace must be byte-identical. *)
let test_jsonl_deterministic () =
  let one () =
    let b = Buffer.create 65536 in
    let sink = Trace.jsonl (Buffer.add_string b) in
    ignore (run_traced ~ncpus:4 ~sink "3x+1");
    Trace.close sink;
    Buffer.contents b
  in
  let a = one () and b = one () in
  Alcotest.(check bool) "trace non-empty" true (String.length a > 0);
  Alcotest.(check string) "byte-identical traces" a b

(* --- ring buffer -------------------------------------------------------- *)

let dummy_record i =
  {
    Trace.time = float_of_int i;
    thread = i;
    rank = 0;
    main = false;
    event = Trace.Charge { category = "work"; cost = 1.0 };
  }

let test_ring_drops_oldest () =
  let ring = Trace.ring ~capacity:4 in
  let sink = Trace.ring_sink ring in
  for i = 0 to 5 do
    Trace.emit sink (dummy_record i)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.ring_length ring);
  Alcotest.(check int) "two dropped" 2 (Trace.ring_dropped ring);
  Alcotest.(check (list int)) "oldest dropped first" [ 2; 3; 4; 5 ]
    (List.map (fun (r : Trace.record) -> r.Trace.thread)
       (Trace.ring_records ring))

(* --- serialisation round trips ------------------------------------------ *)

let sample_records =
  let mk ?(thread = 7) ?(rank = 3) ?(main = false) event =
    { Trace.time = 123.5; thread; rank; main; event }
  in
  [
    mk (Trace.Fork { child = 4; child_rank = 2; point = 1 });
    mk (Trace.Speculate { child_rank = 2; counter = 9 });
    mk (Trace.Check { counter = 9; stop = true });
    mk (Trace.Validate { words = 42; ok = false });
    mk (Trace.Commit { words = 17; counter = 5 });
    mk (Trace.Rollback { reason = Trace.Conflict });
    mk (Trace.Rollback { reason = Trace.Buffer_overflow });
    mk (Trace.Nosync { point = 3 });
    mk Trace.Overflow;
    mk (Trace.Join { child = 4; committed = true });
    mk (Trace.Barrier { counter = 2 });
    mk
      (Trace.Retire
         { committed = true; runtime = 1e6; stats = [ ("work", 0.125) ] });
    mk (Trace.Charge { category = "join"; cost = 0.25 });
    mk (Trace.Spill { addr = 4096 });
    mk (Trace.Frame { push = false; depth = 2 });
    mk ~thread:(-1) ~rank:(-1) (Trace.Sched { what = "wake"; info = 3 });
    mk ~thread:0 ~rank:0 ~main:true Trace.Run_end;
  ]

let test_jsonl_round_trip () =
  List.iter
    (fun r ->
      let line = Trace.record_to_jsonl r in
      let r' = Trace.record_of_jsonl line in
      Alcotest.(check string)
        ("round trip " ^ Trace.event_name r.Trace.event)
        line
        (Trace.record_to_jsonl r'))
    sample_records

let test_schema_error () =
  Alcotest.check_raises "unknown event"
    (Trace.Schema_error "unknown event \"bogus\"") (fun () ->
      ignore
        (Trace.record_of_jsonl
           {|{"t":0,"tid":0,"rank":0,"main":true,"ev":"bogus","args":{}}|}))

(* --- chrome sink -------------------------------------------------------- *)

let test_chrome_valid_json () =
  let b = Buffer.create 65536 in
  let sink = Trace.chrome (Buffer.add_string b) in
  ignore (run_traced ~ncpus:4 ~sink "3x+1");
  Trace.close sink;
  match Json.of_string (Buffer.contents b) with
  | Json.Obj fields ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Json.List evs) ->
      Alcotest.(check bool) "has events" true (List.length evs > 0)
    | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "not a JSON object"

(* --- report vs stats ---------------------------------------------------- *)

(* The load-bearing cross-check: folding the trace must reconstruct the
   same accounting the runtime's Stats counters hold, so Fig. 8/9
   percentages computed from a trace file equal the --stats ones. *)
let check_report_matches_stats name =
  let ring = Trace.ring ~capacity:4_000_000 in
  let r = run_traced ~ncpus:8 ~sink:(Trace.ring_sink ring) name in
  Alcotest.(check int) (name ^ " nothing dropped") 0 (Trace.ring_dropped ring);
  let rep = Report.of_records (Trace.ring_records ring) in
  let metrics = Mutls.Metrics.compute ~ts:1.0 r in
  let main_stats = r.Mutls.Eval.tmain_stats in
  let spec_total =
    List.fold_left
      (fun acc (t : Mutls_runtime.Thread_manager.retired) ->
        acc +. Stats.total t.r_stats)
      0.0 r.Mutls.Eval.tretired
  in
  close_enough (name ^ " runtime") r.Mutls.Eval.tfinish rep.Report.runtime;
  close_enough (name ^ " crit_total") (Stats.total main_stats)
    rep.Report.crit_total;
  close_enough (name ^ " spec_total") spec_total rep.Report.spec_total;
  Alcotest.(check int) (name ^ " forks") metrics.Mutls.Metrics.forks
    rep.Report.forks;
  Alcotest.(check int) (name ^ " commits") metrics.Mutls.Metrics.commits
    rep.Report.commits;
  Alcotest.(check int) (name ^ " rollbacks") metrics.Mutls.Metrics.rollbacks
    rep.Report.rollbacks;
  let check_breakdown what expected got =
    List.iter2
      (fun (c1, v1) (c2, v2) ->
        Alcotest.(check string) (what ^ " category order") c1 c2;
        close_enough (Printf.sprintf "%s %s %s" name what c1) v1 v2)
      expected got
  in
  check_breakdown "crit" metrics.Mutls.Metrics.crit_breakdown
    rep.Report.crit_breakdown;
  check_breakdown "spec" metrics.Mutls.Metrics.spec_breakdown
    rep.Report.spec_breakdown

let test_report_3x1 () = check_report_matches_stats "3x+1"
let test_report_fft () = check_report_matches_stats "fft"

(* And the same equality must hold through a JSONL file round trip. *)
let test_report_via_jsonl () =
  let b = Buffer.create 65536 in
  let sink = Trace.jsonl (Buffer.add_string b) in
  let r = run_traced ~ncpus:4 ~sink "3x+1" in
  Trace.close sink;
  let rep = Report.of_jsonl (Buffer.contents b) in
  close_enough "crit_total via jsonl"
    (Stats.total r.Mutls.Eval.tmain_stats)
    rep.Report.crit_total

let tests =
  [
    Alcotest.test_case "jsonl trace is deterministic" `Quick
      test_jsonl_deterministic;
    Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "schema error" `Quick test_schema_error;
    Alcotest.test_case "chrome sink is valid json" `Quick
      test_chrome_valid_json;
    Alcotest.test_case "report matches stats (3x+1)" `Quick test_report_3x1;
    Alcotest.test_case "report matches stats (fft)" `Quick test_report_fft;
    Alcotest.test_case "report via jsonl file format" `Quick
      test_report_via_jsonl;
  ]
