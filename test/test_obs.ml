(* Observability layer: trace determinism, the bounded ring sink, JSON
   round-trips, and the central cross-check — a Report folded from a
   trace reproduces the in-process Stats/Metrics accounting. *)

module Trace = Mutls_obs.Trace
module Report = Mutls_obs.Report
module Json = Mutls_obs.Json
module Stats = Mutls_runtime.Stats

(* Run one built-in benchmark under TLS with the given sink. *)
let run_traced ?(ncpus = 8) ~sink name =
  let w = Mutls.Workloads.find name in
  let m = Mutls.compile Mutls.C (w.Mutls.Workloads.c_source ()) in
  let t = Mutls.speculate m in
  let cfg = { Mutls.Config.default with ncpus; trace_sink = sink } in
  Mutls.run_tls cfg t

let close_enough what a b =
  let tol = 1e-6 *. (1.0 +. abs_float a +. abs_float b) in
  if abs_float (a -. b) > tol then
    Alcotest.failf "%s: %.12g <> %.12g" what a b

(* --- determinism -------------------------------------------------------- *)

(* Same seed, same program: the JSONL trace must be byte-identical. *)
let test_jsonl_deterministic () =
  let one () =
    let b = Buffer.create 65536 in
    let sink = Trace.jsonl (Buffer.add_string b) in
    ignore (run_traced ~ncpus:4 ~sink "3x+1");
    Trace.close sink;
    Buffer.contents b
  in
  let a = one () and b = one () in
  Alcotest.(check bool) "trace non-empty" true (String.length a > 0);
  Alcotest.(check string) "byte-identical traces" a b

(* --- ring buffer -------------------------------------------------------- *)

let dummy_record i =
  {
    Trace.time = float_of_int i;
    thread = i;
    rank = 0;
    main = false;
    event = Trace.Charge { category = "work"; cost = 1.0 };
  }

let test_ring_drops_oldest () =
  let ring = Trace.ring ~capacity:4 in
  let sink = Trace.ring_sink ring in
  for i = 0 to 5 do
    Trace.emit sink (dummy_record i)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.ring_length ring);
  Alcotest.(check int) "two dropped" 2 (Trace.ring_dropped ring);
  Alcotest.(check (list int)) "oldest dropped first" [ 2; 3; 4; 5 ]
    (List.map (fun (r : Trace.record) -> r.Trace.thread)
       (Trace.ring_records ring))

(* --- serialisation round trips ------------------------------------------ *)

let sample_records =
  let mk ?(thread = 7) ?(rank = 3) ?(main = false) event =
    { Trace.time = 123.5; thread; rank; main; event }
  in
  [
    mk (Trace.Fork { child = 4; child_rank = 2; point = 1 });
    mk (Trace.Speculate { child_rank = 2; counter = 9 });
    mk (Trace.Check { counter = 9; stop = true });
    mk (Trace.Validate { words = 42; ok = false; addr = None });
    mk (Trace.Validate { words = 42; ok = false; addr = Some 0x1f8 });
    mk (Trace.Validate { words = 7; ok = true; addr = None });
    mk (Trace.Commit { words = 17; counter = 5 });
    mk (Trace.Rollback { reason = Trace.Conflict; point = 2 });
    mk (Trace.Rollback { reason = Trace.Buffer_overflow; point = -1 });
    mk (Trace.Nosync { point = 3 });
    mk (Trace.Overflow { spill_cap = -1 });
    mk (Trace.Join { child = 4; committed = true });
    mk (Trace.Barrier { counter = 2 });
    mk
      (Trace.Retire
         { committed = true; runtime = 1e6; stats = [ ("work", 0.125) ] });
    mk (Trace.Charge { category = "join"; cost = 0.25 });
    mk (Trace.Spill { addr = 4096 });
    mk (Trace.Frame { push = false; depth = 2 });
    mk ~thread:(-1) ~rank:(-1) (Trace.Sched { what = "wake"; info = 3 });
    mk ~thread:0 ~rank:0 ~main:true Trace.Run_end;
  ]

let test_jsonl_round_trip () =
  List.iter
    (fun r ->
      let line = Trace.record_to_jsonl r in
      let r' = Trace.record_of_jsonl line in
      Alcotest.(check string)
        ("round trip " ^ Trace.event_name r.Trace.event)
        line
        (Trace.record_to_jsonl r'))
    sample_records

let test_schema_error () =
  Alcotest.check_raises "unknown event"
    (Trace.Schema_error "unknown event \"bogus\"") (fun () ->
      ignore
        (Trace.record_of_jsonl
           {|{"t":0,"tid":0,"rank":0,"main":true,"ev":"bogus","args":{}}|}))

(* --- chrome sink -------------------------------------------------------- *)

let test_chrome_valid_json () =
  let b = Buffer.create 65536 in
  let sink = Trace.chrome (Buffer.add_string b) in
  ignore (run_traced ~ncpus:4 ~sink "3x+1");
  Trace.close sink;
  match Json.of_string (Buffer.contents b) with
  | Json.Obj fields ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (Json.List evs) ->
      Alcotest.(check bool) "has events" true (List.length evs > 0)
    | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "not a JSON object"

(* --- report vs stats ---------------------------------------------------- *)

(* The load-bearing cross-check: folding the trace must reconstruct the
   same accounting the runtime's Stats counters hold, so Fig. 8/9
   percentages computed from a trace file equal the --stats ones. *)
let check_report_matches_stats name =
  let ring = Trace.ring ~capacity:4_000_000 in
  let r = run_traced ~ncpus:8 ~sink:(Trace.ring_sink ring) name in
  Alcotest.(check int) (name ^ " nothing dropped") 0 (Trace.ring_dropped ring);
  let rep = Report.of_records (Trace.ring_records ring) in
  let metrics = Mutls.Metrics.compute ~ts:1.0 r in
  let main_stats = r.Mutls.Eval.tmain_stats in
  let spec_total =
    List.fold_left
      (fun acc (t : Mutls_runtime.Thread_manager.retired) ->
        acc +. Stats.total t.r_stats)
      0.0 r.Mutls.Eval.tretired
  in
  close_enough (name ^ " runtime") r.Mutls.Eval.tfinish rep.Report.runtime;
  close_enough (name ^ " crit_total") (Stats.total main_stats)
    rep.Report.crit_total;
  close_enough (name ^ " spec_total") spec_total rep.Report.spec_total;
  Alcotest.(check int) (name ^ " forks") metrics.Mutls.Metrics.forks
    rep.Report.forks;
  Alcotest.(check int) (name ^ " commits") metrics.Mutls.Metrics.commits
    rep.Report.commits;
  Alcotest.(check int) (name ^ " rollbacks") metrics.Mutls.Metrics.rollbacks
    rep.Report.rollbacks;
  let check_breakdown what expected got =
    List.iter2
      (fun (c1, v1) (c2, v2) ->
        Alcotest.(check string) (what ^ " category order") c1 c2;
        close_enough (Printf.sprintf "%s %s %s" name what c1) v1 v2)
      expected got
  in
  check_breakdown "crit" metrics.Mutls.Metrics.crit_breakdown
    rep.Report.crit_breakdown;
  check_breakdown "spec" metrics.Mutls.Metrics.spec_breakdown
    rep.Report.spec_breakdown

let test_report_3x1 () = check_report_matches_stats "3x+1"
let test_report_fft () = check_report_matches_stats "fft"

(* And the same equality must hold through a JSONL file round trip. *)
let test_report_via_jsonl () =
  let b = Buffer.create 65536 in
  let sink = Trace.jsonl (Buffer.add_string b) in
  let r = run_traced ~ncpus:4 ~sink "3x+1" in
  Trace.close sink;
  let rep = Report.of_jsonl (Buffer.contents b) in
  close_enough "crit_total via jsonl"
    (Stats.total r.Mutls.Eval.tmain_stats)
    rep.Report.crit_total

(* --- profiler ----------------------------------------------------------- *)

module Profile = Mutls_obs.Profile

(* A hand-built trace with a known exact profile: fork point 0 pays off
   (one commit, one conflict rollback), fork point 7 is pure waste (one
   abandoned subtree), address 0x40 collects one conflict and one
   spill, and the three ranks split busy/discarded/overhead/idle
   cycles. *)
let hand_built_trace =
  let mk ?(time = 0.0) ?(thread = 0) ?(rank = 0) ?(main = false) event =
    { Trace.time; thread; rank; main; event }
  in
  [
    mk ~main:true (Trace.Fork { child = 1; child_rank = 1; point = 0 });
    mk ~thread:1 ~rank:1 (Trace.Validate { words = 4; ok = false; addr = Some 0x40 });
    mk ~thread:1 ~rank:1 (Trace.Rollback { reason = Trace.Conflict; point = 0 });
    mk ~thread:1 ~rank:1
      (Trace.Retire
         { committed = false; runtime = 50.0;
           stats = [ ("wasted work", 80.0); ("validation", 5.0) ] });
    mk ~main:true (Trace.Fork { child = 2; child_rank = 1; point = 0 });
    mk ~thread:2 ~rank:1 (Trace.Spill { addr = 0x40 });
    mk ~thread:2 ~rank:1
      (Trace.Retire
         { committed = true; runtime = 60.0;
           stats = [ ("work", 120.0); ("commit", 3.0); ("idle", 2.0) ] });
    mk ~main:true (Trace.Fork { child = 3; child_rank = 2; point = 7 });
    mk ~thread:3 ~rank:2 (Trace.Nosync { point = 7 });
    mk ~thread:3 ~rank:2 (Trace.Rollback { reason = Trace.Abandoned; point = 7 });
    mk ~thread:3 ~rank:2
      (Trace.Retire
         { committed = false; runtime = 10.0;
           stats = [ ("wasted work", 30.0) ] });
    mk ~main:true (Trace.Charge { category = "work"; cost = 500.0 });
    mk ~main:true (Trace.Charge { category = "join"; cost = 20.0 });
    (* a non-main Charge must NOT double-book: its cycles arrive via
       the thread's Retire stats *)
    mk ~thread:9 ~rank:3 (Trace.Charge { category = "work"; cost = 999.0 });
    mk ~time:1000.0 ~main:true Trace.Run_end;
  ]

let test_profile_hand_built () =
  let p = Profile.of_records hand_built_trace in
  Alcotest.(check int) "events" 15 p.Profile.events;
  close_enough "runtime" 1000.0 p.Profile.runtime;
  (match p.Profile.points with
  | [ p0; p7 ] ->
    Alcotest.(check int) "point0 id" 0 p0.Profile.point;
    Alcotest.(check int) "point0 forks" 2 p0.Profile.forks;
    Alcotest.(check int) "point0 commits" 1 p0.Profile.commits;
    Alcotest.(check int) "point0 rollbacks" 1 (Profile.rollback_total p0);
    Alcotest.(check int) "point0 conflict rollbacks" 1
      (List.assoc Trace.Conflict p0.Profile.rollbacks);
    Alcotest.(check int) "point0 nosyncs" 0 p0.Profile.nosyncs;
    close_enough "point0 committed" 120.0 p0.Profile.committed_cycles;
    close_enough "point0 wasted" 80.0 p0.Profile.wasted_cycles;
    close_enough "point0 payoff" 0.6 (Profile.payoff p0);
    close_enough "point0 wasted_ratio" 0.4 (Profile.wasted_ratio p0);
    Alcotest.(check int) "point7 id" 7 p7.Profile.point;
    Alcotest.(check int) "point7 forks" 1 p7.Profile.forks;
    Alcotest.(check int) "point7 commits" 0 p7.Profile.commits;
    Alcotest.(check int) "point7 abandoned rollbacks" 1
      (List.assoc Trace.Abandoned p7.Profile.rollbacks);
    Alcotest.(check int) "point7 nosyncs" 1 p7.Profile.nosyncs;
    close_enough "point7 wasted" 30.0 p7.Profile.wasted_cycles;
    close_enough "point7 payoff" 0.0 (Profile.payoff p7);
    close_enough "point7 wasted_ratio" 1.0 (Profile.wasted_ratio p7)
  | ps -> Alcotest.failf "expected 2 points, got %d" (List.length ps));
  (match p.Profile.hot_addrs with
  | [ h ] ->
    Alcotest.(check int) "hot addr" 0x40 h.Profile.addr;
    Alcotest.(check int) "hot conflicts" 1 h.Profile.conflicts;
    Alcotest.(check int) "hot spills" 1 h.Profile.spills
  | hs -> Alcotest.failf "expected 1 hot addr, got %d" (List.length hs));
  (match p.Profile.ranks with
  | [ r0; r1; r2 ] ->
    Alcotest.(check int) "rank ids" 0 r0.Profile.rank;
    close_enough "rank0 busy" 500.0 r0.Profile.busy;
    close_enough "rank0 idle" 20.0 r0.Profile.idle;
    close_enough "rank0 discarded" 0.0 r0.Profile.discarded;
    close_enough "rank1 busy" 120.0 r1.Profile.busy;
    close_enough "rank1 discarded" 80.0 r1.Profile.discarded;
    close_enough "rank1 overhead" 8.0 r1.Profile.overhead;
    close_enough "rank1 idle" 2.0 r1.Profile.idle;
    close_enough "rank2 discarded" 30.0 r2.Profile.discarded;
    close_enough "rank2 busy" 0.0 r2.Profile.busy
  | rs -> Alcotest.failf "expected 3 ranks, got %d" (List.length rs));
  (* rank 3 must not exist: the non-main Charge was ignored *)
  Alcotest.(check bool) "no rank 3" true
    (not (List.exists (fun r -> r.Profile.rank = 3) p.Profile.ranks));
  match Profile.advise p with
  | [ a ] ->
    Alcotest.(check int) "advisor flags point 7" 7 a.Profile.a_point;
    close_enough "advisor ratio" 1.0 a.Profile.a_wasted_ratio
  | advs -> Alcotest.failf "expected 1 advice, got %d" (List.length advs)

(* Streaming (sink tee'd into a live run) and post-hoc (of_records over
   the same records) must produce the identical profile. *)
let test_profile_streaming_eq_posthoc () =
  let ring = Trace.ring ~capacity:4_000_000 in
  let agg = Profile.create () in
  let sink = Trace.tee [ Trace.ring_sink ring; Profile.sink agg ] in
  ignore (run_traced ~ncpus:8 ~sink "fft");
  Alcotest.(check int) "nothing dropped" 0 (Trace.ring_dropped ring);
  let streaming = Profile.finish agg in
  let posthoc = Profile.of_records (Trace.ring_records ring) in
  Alcotest.(check string) "streaming = post-hoc"
    (Json.to_string (Profile.to_json posthoc))
    (Json.to_string (Profile.to_json streaming));
  Alcotest.(check bool) "profile saw work" true
    (List.exists (fun p -> p.Profile.committed_cycles > 0.0) posthoc.Profile.points)

(* And the same identity through the JSONL wire format: the enriched
   addr/point fields must survive encode -> parse. *)
let test_profile_via_jsonl () =
  let b = Buffer.create 65536 in
  let agg = Profile.create () in
  let sink = Trace.tee [ Trace.jsonl (Buffer.add_string b); Profile.sink agg ] in
  ignore (run_traced ~ncpus:8 ~sink "3x+1");
  Trace.close sink;
  let records, stats = Report.records_of_jsonl_lenient (Buffer.contents b) in
  Alcotest.(check int) "no lines skipped" 0 stats.Report.skipped;
  Alcotest.(check string) "profile survives the wire"
    (Json.to_string (Profile.to_json (Profile.finish agg)))
    (Json.to_string (Profile.to_json (Profile.of_records records)))

(* Advisor boundaries: a ratio exactly at the threshold is not flagged
   (strict >), just above is, and min_forks filters. *)
let advisor_trace ~work ~wasted =
  let mk ?(thread = 0) ?(rank = 0) ?(main = false) event =
    { Trace.time = 0.0; thread; rank; main; event }
  in
  [
    mk ~main:true (Trace.Fork { child = 1; child_rank = 1; point = 5 });
    mk ~thread:1 ~rank:1
      (Trace.Retire
         { committed = wasted = 0.0; runtime = 1.0;
           stats = [ ("work", work); ("wasted work", wasted) ] });
  ]

let test_advisor_threshold () =
  let at = Profile.of_records (advisor_trace ~work:50.0 ~wasted:50.0) in
  Alcotest.(check int) "ratio = threshold not flagged" 0
    (List.length (Profile.advise ~threshold:0.5 at));
  let above = Profile.of_records (advisor_trace ~work:49.0 ~wasted:51.0) in
  (match Profile.advise ~threshold:0.5 above with
  | [ a ] ->
    Alcotest.(check int) "flagged point" 5 a.Profile.a_point;
    Alcotest.(check int) "fork count" 1 a.Profile.a_forks;
    close_enough "ratio" 0.51 a.Profile.a_wasted_ratio
  | advs -> Alcotest.failf "expected 1 advice, got %d" (List.length advs));
  Alcotest.(check int) "min_forks filters" 0
    (List.length (Profile.advise ~threshold:0.5 ~min_forks:2 above));
  Alcotest.(check int) "threshold 0 flags any waste" 1
    (List.length (Profile.advise ~threshold:0.0 above));
  let clean = Profile.of_records (advisor_trace ~work:100.0 ~wasted:0.0) in
  Alcotest.(check int) "no waste never flagged" 0
    (List.length (Profile.advise ~threshold:0.0 clean))

(* --- lenient JSONL reading ---------------------------------------------- *)

let test_lenient_reader () =
  (* empty input *)
  let records, stats = Report.records_of_jsonl_lenient "" in
  Alcotest.(check int) "empty: lines" 0 stats.Report.lines;
  Alcotest.(check int) "empty: records" 0 (List.length records);
  (* non-JSONL input: every line counted and skipped *)
  let _, stats = Report.records_of_jsonl_lenient "hello\nworld\n" in
  Alcotest.(check int) "garbage: lines" 2 stats.Report.lines;
  Alcotest.(check int) "garbage: parsed" 0 stats.Report.parsed;
  Alcotest.(check int) "garbage: skipped" 2 stats.Report.skipped;
  Alcotest.(check bool) "garbage: first_error set" true
    (stats.Report.first_error <> None);
  (* a damaged line in the middle is skipped, the rest folds *)
  let good = List.map Trace.record_to_jsonl sample_records in
  let text =
    String.concat "\n"
      (List.concat [ [ List.nth good 0 ]; [ "{\"t\": 1, trunca" ]; List.tl good ])
    ^ "\n"
  in
  let records, stats = Report.records_of_jsonl_lenient text in
  Alcotest.(check int) "damaged: parsed" (List.length sample_records)
    stats.Report.parsed;
  Alcotest.(check int) "damaged: skipped" 1 stats.Report.skipped;
  Alcotest.(check int) "damaged: records" (List.length sample_records)
    (List.length records);
  (match stats.Report.first_error with
  | Some e ->
    Alcotest.(check bool) "damaged: error names line 2" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")
  | None -> Alcotest.fail "damaged: first_error missing");
  (* blank lines are not an error *)
  let _, stats = Report.records_of_jsonl_lenient ("\n" ^ List.hd good ^ "\n\n") in
  Alcotest.(check int) "blanks: lines" 1 stats.Report.lines;
  Alcotest.(check int) "blanks: skipped" 0 stats.Report.skipped

let tests =
  [
    Alcotest.test_case "jsonl trace is deterministic" `Quick
      test_jsonl_deterministic;
    Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "schema error" `Quick test_schema_error;
    Alcotest.test_case "chrome sink is valid json" `Quick
      test_chrome_valid_json;
    Alcotest.test_case "report matches stats (3x+1)" `Quick test_report_3x1;
    Alcotest.test_case "report matches stats (fft)" `Quick test_report_fft;
    Alcotest.test_case "report via jsonl file format" `Quick
      test_report_via_jsonl;
    Alcotest.test_case "profile of a hand-built trace" `Quick
      test_profile_hand_built;
    Alcotest.test_case "profile streaming = post-hoc" `Quick
      test_profile_streaming_eq_posthoc;
    Alcotest.test_case "profile via jsonl wire format" `Quick
      test_profile_via_jsonl;
    Alcotest.test_case "advisor threshold boundaries" `Quick
      test_advisor_threshold;
    Alcotest.test_case "lenient jsonl reader" `Quick test_lenient_reader;
  ]
