(* The parallel execution backend: Chase–Lev deque unit tests, the
   work-stealing domains scheduler, lane-striped telemetry counters
   under real parallelism, and the headline acceptance property — the
   domains backend produces the same program outputs as the
   deterministic simulator oracle, whatever schedule the hardware
   produces. *)

module Config = Mutls_runtime.Config
module Exec = Mutls_runtime.Exec
module TM = Mutls_runtime.Thread_manager
module Deque = Mutls_par.Deque
module Sched = Mutls_par.Sched
module Telemetry = Mutls_obs.Telemetry
module Trace = Mutls_obs.Trace
module Eval = Mutls_interp.Eval
module Chaos = Mutls.Chaos
module Workloads = Mutls_workloads.Workloads

let compile source =
  Mutls_speculator.Pass.run (Mutls_minic.Codegen.compile source)

let seq_output source =
  (Eval.run_sequential (Mutls_minic.Codegen.compile source)).Eval.soutput

(* --- deque ------------------------------------------------------------- *)

let test_deque_lifo_pop () =
  let q = Deque.create () in
  Alcotest.(check (option int)) "empty pop" None (Deque.pop q);
  for i = 1 to 10 do
    Alcotest.(check bool) "push accepted" true (Deque.push q i)
  done;
  Alcotest.(check int) "size" 10 (Deque.size q);
  for i = 10 downto 1 do
    Alcotest.(check (option int)) "owner pops newest first" (Some i)
      (Deque.pop q)
  done;
  Alcotest.(check (option int)) "drained" None (Deque.pop q)

let test_deque_fifo_steal () =
  let q = Deque.create () in
  Alcotest.(check (option int)) "empty steal" None (Deque.steal q);
  for i = 1 to 10 do
    ignore (Deque.push q i)
  done;
  for i = 1 to 10 do
    Alcotest.(check (option int)) "thief steals oldest first" (Some i)
      (Deque.steal q)
  done;
  Alcotest.(check (option int)) "drained" None (Deque.steal q)

let test_deque_bounded () =
  let q = Deque.create ~capacity:4 () in
  for i = 1 to 4 do
    Alcotest.(check bool) "fits" true (Deque.push q i)
  done;
  Alcotest.(check bool) "full push refused" false (Deque.push q 5);
  Alcotest.(check (option int)) "pop after refusal" (Some 4) (Deque.pop q);
  Alcotest.(check bool) "space reclaimed" true (Deque.push q 5);
  (* capacity rounds up to a power of two *)
  let q3 = Deque.create ~capacity:3 () in
  for i = 1 to 4 do
    Alcotest.(check bool) "rounded capacity" true (Deque.push q3 i)
  done;
  Alcotest.(check bool) "rounded bound" false (Deque.push q3 5)

let test_deque_pop_steal_mix () =
  let q = Deque.create () in
  for i = 1 to 6 do
    ignore (Deque.push q i)
  done;
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal q);
  Alcotest.(check (option int)) "pop newest" (Some 6) (Deque.pop q);
  Alcotest.(check (option int)) "steal next" (Some 2) (Deque.steal q);
  Alcotest.(check (option int)) "pop next" (Some 5) (Deque.pop q);
  Alcotest.(check (option int)) "meet in the middle" (Some 4) (Deque.pop q);
  Alcotest.(check (option int)) "last element" (Some 3) (Deque.pop q);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop q);
  Alcotest.(check (option int)) "empty steal" None (Deque.steal q)

(* The race test: one owner pushing (and popping when full) against 7
   thieves on a deliberately small deque.  Every item must be consumed
   exactly once, across whatever interleaving the hardware gives us. *)
let test_deque_contended () =
  let n = 10_000 and nthieves = 7 in
  let q = Deque.create ~capacity:64 () in
  let stop = Atomic.make false in
  let thief () =
    let got = ref [] in
    let rec loop () =
      match Deque.steal q with
      | Some x ->
        got := x :: !got;
        loop ()
      | None ->
        if Atomic.get stop then !got
        else begin
          Domain.cpu_relax ();
          loop ()
        end
    in
    loop ()
  in
  let doms = Array.init nthieves (fun _ -> Domain.spawn thief) in
  let mine = ref [] in
  for i = 0 to n - 1 do
    while not (Deque.push q i) do
      match Deque.pop q with
      | Some x -> mine := x :: !mine
      | None -> ()
    done
  done;
  let rec drain () =
    match Deque.pop q with
    | Some x ->
      mine := x :: !mine;
      drain ()
    | None -> ()
  in
  (* the owner is the only pusher, so a [None] pop here is definitive *)
  drain ();
  Atomic.set stop true;
  let stolen = Array.fold_left (fun acc d -> Domain.join d @ acc) [] doms in
  let all = List.sort compare (!mine @ stolen) in
  Alcotest.(check int) "every item consumed exactly once" n (List.length all);
  List.iteri
    (fun i x ->
      if i <> x then Alcotest.failf "lost or duplicated item: slot %d holds %d" i x)
    all

(* --- scheduler --------------------------------------------------------- *)

let test_sched_spawn_and_flags () =
  let k = 20 in
  let total = ref (-1) in
  let dt =
    Sched.run ~domains:4 (fun sched ->
        let exec = Sched.exec sched in
        Alcotest.(check bool) "parallel kind" true (exec.Exec.kind = Exec.Parallel);
        Alcotest.(check bool) "exposes a lock" true (exec.Exec.lock <> None);
        let flags = Array.init k (fun _ -> exec.Exec.new_flag ()) in
        Array.iteri
          (fun i f -> exec.Exec.spawn (fun () -> exec.Exec.set f (i * i)))
          flags;
        total := Array.fold_left (fun acc f -> acc + exec.Exec.wait f) 0 flags)
  in
  Alcotest.(check bool) "wall clock is nonnegative" true (dt >= 0.0);
  Alcotest.(check int) "every fiber delivered its value"
    (k * (k - 1) * (2 * k - 1) / 6)
    !total

(* Fibers forking fibers: the tree shape the TLS runtime produces. *)
let test_sched_nested_spawn () =
  let leaves = ref 0 in
  ignore
    (Sched.run ~domains:3 (fun sched ->
         let exec = Sched.exec sched in
         let rec node depth =
           if depth = 0 then 1
           else begin
             let l = exec.Exec.new_flag () and r = exec.Exec.new_flag () in
             exec.Exec.spawn (fun () -> exec.Exec.set l (node (depth - 1)));
             exec.Exec.spawn (fun () -> exec.Exec.set r (node (depth - 1)));
             exec.Exec.wait l + exec.Exec.wait r
           end
         in
         leaves := node 5));
  Alcotest.(check int) "depth-5 binary tree" 32 !leaves

let test_sched_flag_once () =
  let second_set_rejected = ref false in
  ignore
    (Sched.run ~domains:1 (fun sched ->
         let exec = Sched.exec sched in
         let f = exec.Exec.new_flag () in
         Alcotest.(check (option int)) "unset peek" None (exec.Exec.peek f);
         exec.Exec.set f 7;
         Alcotest.(check (option int)) "set peek" (Some 7) (exec.Exec.peek f);
         Alcotest.(check int) "wait on a set flag returns" 7 (exec.Exec.wait f);
         try exec.Exec.set f 8
         with Invalid_argument _ -> second_set_rejected := true));
  Alcotest.(check bool) "second set rejected" true !second_set_rejected

let test_sched_deadlock () =
  Alcotest.check_raises "all fibers parked is a detected deadlock"
    (Sched.Deadlock 1) (fun () ->
      ignore
        (Sched.run ~domains:2 (fun sched ->
             let exec = Sched.exec sched in
             ignore (exec.Exec.wait (exec.Exec.new_flag ())))))

let test_sched_exception () =
  Alcotest.check_raises "fiber exception re-raised from run" (Failure "boom")
    (fun () ->
      ignore
        (Sched.run ~domains:2 (fun sched ->
             let exec = Sched.exec sched in
             exec.Exec.spawn (fun () -> failwith "boom");
             let f = exec.Exec.new_flag () in
             (* park so the failure has somewhere to interrupt *)
             ignore (exec.Exec.wait f))))

let test_sched_bad_domains () =
  Alcotest.check_raises "domains < 1 rejected"
    (Invalid_argument "Sched.run: domains < 1") (fun () ->
      ignore (Sched.run ~domains:0 (fun _ -> ())))

(* --- lane counters under real parallelism ------------------------------ *)

(* Freshly spawned domains have consecutive ids, so their lanes are
   distinct and no increment can be lost; the caller stays out of the
   race (its lane could collide with a spawned id modulo the stripe
   count). *)
let test_counter_lanes_parallel () =
  let reg = Telemetry.create () in
  let c = Telemetry.counter reg "test_lanes_total" in
  let per_domain = 10_000 in
  let doms =
    Array.init 5 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Telemetry.incr c
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "no increment lost across domains" (5 * per_domain)
    (Telemetry.counter_value c);
  Telemetry.reset reg;
  Alcotest.(check int) "reset zeros every lane" 0 (Telemetry.counter_value c)

(* The lane-striped record path must stay allocation-free on every
   domain, not just the main one: measure minor words around 100k
   increments from inside a spawned domain (each domain has its own
   minor heap, so the measurement is domain-local by construction). *)
let test_counter_no_alloc_in_domain () =
  let reg = Telemetry.create () in
  let c = Telemetry.counter reg "test_lanes_alloc_total" in
  let delta =
    Domain.join
      (Domain.spawn (fun () ->
           Telemetry.incr c;
           (* warm-up *)
           let before = Gc.minor_words () in
           for _ = 1 to 100_000 do
             Telemetry.incr c;
             Telemetry.add c 2
           done;
           Gc.minor_words () -. before))
  in
  if delta > 256.0 then
    Alcotest.failf "domain record path allocated %.0f minor words" delta

let test_sched_telemetry () =
  let reg = Telemetry.create () in
  ignore
    (Sched.run ~telemetry:reg ~domains:2 (fun sched ->
         let exec = Sched.exec sched in
         let flags = Array.init 8 (fun _ -> exec.Exec.new_flag ()) in
         Array.iteri (fun i f -> exec.Exec.spawn (fun () -> exec.Exec.set f i)) flags;
         Array.iter (fun f -> ignore (exec.Exec.wait f)) flags));
  let tasks =
    Telemetry.counter_value
      (Telemetry.counter ~labels:[ ("kind", "start") ] reg
         "mutls_domain_tasks_total")
  in
  (* root fiber + 8 spawned fibers *)
  Alcotest.(check int) "task starts counted" 9 tasks

(* --- the oracle property ----------------------------------------------- *)

(* Shared harness: run one program under the deterministic simulator
   and under the domains backend with the same configuration, and
   insist the outputs match (and match the sequential semantics). *)
let check_par_equals_sim ~name ~cfg source =
  let expected = seq_output source in
  let prog = Eval.prepare ~cost:cfg.Config.cost (compile source) in
  let sim = Eval.run_tls_prepared cfg prog in
  let par = Eval.run_tls_par_prepared cfg prog in
  Alcotest.(check string) (name ^ ": simulator matches sequential") expected
    sim.Eval.toutput;
  Alcotest.(check string) (name ^ ": domains backend matches simulator")
    sim.Eval.toutput par.Eval.toutput;
  (sim, par)

let test_par_oracle_property =
  QCheck.Test.make ~name:"domains backend output equals simulator oracle"
    ~count:12
    QCheck.(
      quad (int_range 0 (Chaos.n_templates - 1))
        (pair (int_range 0 1000) (int_range 4 10))
        (int_range 1 4) (int_range 2 6))
    (fun (template, (expr_seed, chunks), domains, ncpus) ->
      let shape =
        { Chaos.template; expr_seed; expr_size = 6; chunks; inner = 3 }
      in
      let source = Chaos.source_of_shape shape in
      let cfg = { Config.default with ncpus; domains } in
      let expected = seq_output source in
      let prog = Eval.prepare (compile source) in
      let sim = Eval.run_tls_prepared cfg prog in
      let par = Eval.run_tls_par_prepared cfg prog in
      if sim.Eval.toutput <> expected then
        QCheck.Test.fail_reportf "simulator diverged from sequential on %s"
          (Chaos.template_name template);
      if par.Eval.toutput <> expected then
        QCheck.Test.fail_reportf
          "domains backend diverged on %s (seed %d, chunks %d, domains %d, \
           ncpus %d):\nexpected %S\ngot      %S"
          (Chaos.template_name template)
          expr_seed chunks domains ncpus expected par.Eval.toutput;
      true)

(* Retirement counts are schedule-dependent in general: a speculative
   thread halts at the first check point that observes its parent's
   sync flag, so how far a child runs before the join — and therefore
   how many fork builtins the resumed parent executes itself — depends
   on the interleaving.  (The chain template retires a different thread
   count at different domain counts, with identical outputs.)

   They ARE deterministic when every speculated continuation reaches a
   terminate point before any check point: the child always stops at
   that same terminate, validates an empty read set, and commits.  A
   straight-line sequence of fork/join regions whose continuations
   start with a print of a constant (an unsafe extern, hence a
   terminate point, with no shared load feeding its argument) is
   exactly that family — each region retires exactly one committed
   thread in both engines, under any schedule. *)
let deterministic_count_source n =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "int a[%d];\nint main() {\n" n);
  for i = 0 to n - 1 do
    Buffer.add_string b
      (Printf.sprintf
         "  __builtin_MUTLS_fork(%d, mixed);\n  a[%d] = %d;\n  __builtin_MUTLS_join(%d);\n  print_int(%d);\n  print_newline();\n"
         i i ((i + 3) * 7) i (1000 + i))
  done;
  Buffer.add_string b
    (Printf.sprintf
       "  int t = 0;\n  for (int c = 0; c < %d; c++) t = t + a[c];\n  print_int(t);\n  print_newline();\n  return 0;\n}\n"
       n);
  Buffer.contents b

let test_par_deterministic_counts () =
  List.iter
    (fun (label, model_override) ->
      let n = 5 in
      let cfg =
        { Config.default with ncpus = 8; domains = 3; model_override }
      in
      let sim, par =
        check_par_equals_sim
          ~name:(Printf.sprintf "counts/%s" label)
          ~cfg
          (deterministic_count_source n)
      in
      let counts r =
        ( List.length r.Eval.tretired,
          List.length
            (List.filter (fun t -> t.TM.r_committed) r.Eval.tretired) )
      in
      Alcotest.(check (pair int int))
        (Printf.sprintf "%s: one committed thread per region, both engines"
           label)
        (n, n) (counts sim);
      Alcotest.(check (pair int int))
        (Printf.sprintf "%s: retired/committed counts equal" label)
        (counts sim) (counts par))
    [ ("mixed", None); ("out-of-order", Some Config.Out_of_order) ]

(* Two paper workloads end to end on the domains backend. *)
let test_par_workloads () =
  List.iteri
    (fun i w ->
      let source = w.Workloads.small () in
      let cfg = { Config.default with ncpus = 4; domains = 2; seed = i } in
      ignore (check_par_equals_sim ~name:w.Workloads.name ~cfg source))
    [ List.nth Workloads.all 0; List.nth Workloads.all 1 ]

(* The synchronized trace sink: every domain emits into one recording
   sink without loss; the stream still contains the run's lifecycle. *)
let test_par_trace_smoke () =
  let events = ref [] in
  let sink =
    {
      Trace.enabled = true;
      emit = (fun r -> events := r :: !events);
      close = (fun () -> ());
    }
  in
  let shape = { Chaos.template = 0; expr_seed = 9; expr_size = 6; chunks = 6; inner = 3 } in
  let source = Chaos.source_of_shape shape in
  let cfg = { Config.default with ncpus = 4; domains = 2; trace_sink = sink } in
  let par = Eval.run_tls_par cfg (compile source) in
  Alcotest.(check string) "output still correct" (seq_output source)
    par.Eval.toutput;
  let names = List.map (fun r -> Trace.event_name r.Trace.event) !events in
  Alcotest.(check bool) "trace recorded forks" true (List.mem "fork" names);
  Alcotest.(check bool) "trace recorded retirements" true
    (List.mem "retire" names)

let tests =
  [
    Alcotest.test_case "deque: owner pops LIFO" `Quick test_deque_lifo_pop;
    Alcotest.test_case "deque: thief steals FIFO" `Quick test_deque_fifo_steal;
    Alcotest.test_case "deque: bounded push" `Quick test_deque_bounded;
    Alcotest.test_case "deque: pop/steal interleave" `Quick test_deque_pop_steal_mix;
    Alcotest.test_case "deque: 7 thieves, exactly-once" `Quick test_deque_contended;
    Alcotest.test_case "sched: spawn and flags" `Quick test_sched_spawn_and_flags;
    Alcotest.test_case "sched: nested fiber tree" `Quick test_sched_nested_spawn;
    Alcotest.test_case "sched: one-shot flags" `Quick test_sched_flag_once;
    Alcotest.test_case "sched: deadlock detection" `Quick test_sched_deadlock;
    Alcotest.test_case "sched: exception propagation" `Quick test_sched_exception;
    Alcotest.test_case "sched: domains validation" `Quick test_sched_bad_domains;
    Alcotest.test_case "telemetry: lane counters across domains" `Quick
      test_counter_lanes_parallel;
    Alcotest.test_case "telemetry: domain record path alloc-free" `Quick
      test_counter_no_alloc_in_domain;
    Alcotest.test_case "sched: task telemetry" `Quick test_sched_telemetry;
    QCheck_alcotest.to_alcotest test_par_oracle_property;
    Alcotest.test_case "par: deterministic retirement counts" `Quick
      test_par_deterministic_counts;
    Alcotest.test_case "par: paper workloads match oracle" `Quick
      test_par_workloads;
    Alcotest.test_case "par: synchronized trace sink" `Quick test_par_trace_smoke;
  ]
