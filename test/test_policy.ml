(* Speculation policy engine: the Config.Policy API, every state-machine
   transition of the static and adaptive engines, the Expand legality
   gate at both the policy and the mechanism level, the zero-tracking
   guarantee of Expand segments, and the Expand == Level-2 equivalence
   property on store-free programs. *)

module Config = Mutls_runtime.Config
module Policy = Mutls_runtime.Policy
module Store_free = Mutls_speculator.Store_free

let rq ?(point = 0) ?(model = Config.Mixed) ?(expandable = false)
    ?(parent_main = true) ?(parent_expand = false) () =
  {
    Policy.rq_point = point;
    rq_model = model;
    rq_expandable = expandable;
    rq_parent_main = parent_main;
    rq_parent_expand = parent_expand;
  }

let decision = Alcotest.testable (fun fmt d ->
    Format.pp_print_string fmt
      (match d with
      | Policy.Deny -> "Deny"
      | Policy.Expand -> "Expand"
      | Policy.Speculate Config.Mixed -> "Speculate mixed"
      | Policy.Speculate Config.In_order -> "Speculate in-order"
      | Policy.Speculate Config.Out_of_order -> "Speculate out-of-order"))
    ( = )

let ev_what = Option.map (fun e -> e.Policy.ev_what)

(* --- Config.Policy API ------------------------------------------------- *)

let test_kind_round_trip () =
  List.iter
    (fun k ->
      Alcotest.(check string) "round trip"
        (Config.Policy.kind_to_string k)
        (Config.Policy.kind_to_string
           (Config.Policy.kind_of_string (Config.Policy.kind_to_string k))))
    [ Config.Policy.Static; Config.Policy.Adaptive; Config.Policy.Hostile ];
  Alcotest.check_raises "unknown kind"
    (Invalid_argument "Config.Policy.kind_of_string: \"greedy\"")
    (fun () -> ignore (Config.Policy.kind_of_string "greedy"))

let test_builders () =
  let s = Config.Policy.static ~backoff:true ~degrade_after:4 () in
  Alcotest.(check bool) "static kind" true (s.Config.Policy.kind = Config.Policy.Static);
  Alcotest.(check bool) "static backoff" true s.Config.Policy.backoff;
  Alcotest.(check int) "static degrade" 4 s.Config.Policy.degrade_after;
  let a = Config.Policy.adaptive ~deny_after:2 ~reprobe_after:8 ~expand:false () in
  Alcotest.(check bool) "adaptive kind" true (a.Config.Policy.kind = Config.Policy.Adaptive);
  Alcotest.(check int) "deny_after" 2 a.Config.Policy.deny_after;
  Alcotest.(check int) "reprobe_after" 8 a.Config.Policy.reprobe_after;
  Alcotest.(check bool) "expand off" false a.Config.Policy.expand;
  let h = Config.Policy.hostile () in
  Alcotest.(check bool) "hostile kind" true (h.Config.Policy.kind = Config.Policy.Hostile)

let test_validate () =
  Config.Policy.validate Config.Policy.default;
  List.iter
    (fun (label, p) ->
      match Config.Policy.validate p with
      | () -> Alcotest.failf "%s should not validate" label
      | exception Invalid_argument _ -> ())
    [
      ("degrade_after<0", { Config.Policy.default with Config.Policy.degrade_after = -1 });
      ("deny_after<0", { Config.Policy.default with Config.Policy.deny_after = -1 });
      ("reprobe_after=0", { Config.Policy.default with Config.Policy.reprobe_after = 0 });
      ("threshold>1", { Config.Policy.default with Config.Policy.payoff_threshold = 1.5 });
      ("threshold<0", { Config.Policy.default with Config.Policy.payoff_threshold = -0.1 });
      ("min_samples<0", { Config.Policy.default with Config.Policy.min_samples = -1 });
    ];
  (* Config.validate covers the nested policy too *)
  match
    Config.validate
      { Config.default with
        policy = { Config.Policy.default with Config.Policy.reprobe_after = 0 } }
  with
  | () -> Alcotest.fail "Config.validate should reject a bad policy"
  | exception Invalid_argument _ -> ()

(* The deprecated flat fields keep working: effective_policy folds them
   into the nested record, so pre-policy call sites behave unchanged. *)
let test_deprecated_shims () =
  let cfg = { Config.default with backoff = true; degrade_after = 7 } in
  let p = Config.effective_policy cfg in
  Alcotest.(check bool) "flat backoff folds" true p.Config.Policy.backoff;
  Alcotest.(check int) "flat degrade folds" 7 p.Config.Policy.degrade_after;
  (* the nested field wins when it is set *)
  let cfg =
    { Config.default with
      degrade_after = 7;
      policy = Config.Policy.static ~degrade_after:3 () }
  in
  Alcotest.(check int) "nested degrade wins" 3
    (Config.effective_policy cfg).Config.Policy.degrade_after

(* --- static engine ----------------------------------------------------- *)

let test_static_backoff_transitions () =
  let p = Policy.static (Config.Policy.static ~backoff:true ()) in
  Alcotest.check decision "initially speculates" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  (* first rollback: penalty 1, skip 1 *)
  Alcotest.(check (option string)) "backoff event" (Some "backoff")
    (ev_what (Policy.on_rollback p ~point:0));
  Alcotest.check decision "skips one" Policy.Deny (Policy.decide p (rq ()));
  Alcotest.check decision "then resumes" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  (* second rollback doubles the penalty *)
  (match Policy.on_rollback p ~point:0 with
  | Some e -> Alcotest.(check int) "penalty doubles" 2 e.Policy.ev_info
  | None -> Alcotest.fail "expected backoff event");
  Alcotest.check decision "skip 1/2" Policy.Deny (Policy.decide p (rq ()));
  Alcotest.check decision "skip 2/2" Policy.Deny (Policy.decide p (rq ()));
  Alcotest.check decision "resumes" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  (* a commit halves the penalty: next rollback doubles 1 -> 2 *)
  Policy.on_commit p ~point:0;
  (match Policy.on_rollback p ~point:0 with
  | Some e -> Alcotest.(check int) "halved then doubled" 2 e.Policy.ev_info
  | None -> Alcotest.fail "expected backoff event");
  (* another point is independent *)
  Alcotest.check decision "other point clean" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ~point:1 ()))

let test_static_no_backoff_is_permissive () =
  let p = Policy.static (Config.Policy.static ()) in
  ignore (Policy.on_rollback p ~point:0);
  ignore (Policy.on_rollback p ~point:0);
  Alcotest.check decision "no veto without backoff"
    (Policy.Speculate Config.In_order)
    (Policy.decide p (rq ~model:Config.In_order ()))

let test_static_degrade () =
  let p = Policy.static (Config.Policy.static ~degrade_after:2 ()) in
  Alcotest.(check (option string)) "first overflow: no event" None
    (ev_what (Policy.on_overflow p ~point:0 ~pressure:Policy.Exhaust));
  Alcotest.(check bool) "not yet degraded" false (Policy.degraded p);
  Alcotest.(check (option string)) "second overflow degrades" (Some "degrade")
    (ev_what (Policy.on_overflow p ~point:0 ~pressure:Policy.Exhaust));
  Alcotest.(check bool) "degraded" true (Policy.degraded p);
  Alcotest.check decision "degraded denies everything" Policy.Deny
    (Policy.decide p (rq ()));
  (* a commit before the threshold would have reset the streak *)
  let p = Policy.static (Config.Policy.static ~degrade_after:2 ()) in
  ignore (Policy.on_overflow p ~point:0 ~pressure:Policy.Exhaust);
  Policy.on_commit p ~point:0;
  Alcotest.(check (option string)) "commit resets the streak" None
    (ev_what (Policy.on_overflow p ~point:0 ~pressure:Policy.Exhaust))

(* --- adaptive engine --------------------------------------------------- *)

let adaptive ?(deny_after = 3) ?(reprobe_after = 4) ?(min_samples = 4) () =
  Policy.adaptive
    (Config.Policy.adaptive ~deny_after ~reprobe_after ~min_samples ())

let test_adaptive_deny_streak () =
  let p = adaptive () in
  Alcotest.(check (option string)) "rollback 1" None
    (ev_what (Policy.on_rollback p ~point:0));
  Alcotest.(check (option string)) "rollback 2" None
    (ev_what (Policy.on_rollback p ~point:0));
  Alcotest.(check (option string)) "rollback 3 denies" (Some "deny")
    (ev_what (Policy.on_rollback p ~point:0));
  Alcotest.check decision "denying" Policy.Deny (Policy.decide p (rq ()));
  (* a commit inside the streak would have reset it *)
  let p = adaptive () in
  ignore (Policy.on_rollback p ~point:0);
  ignore (Policy.on_rollback p ~point:0);
  Policy.on_commit p ~point:0;
  ignore (Policy.on_rollback p ~point:0);
  Alcotest.(check (option string)) "streak reset by commit" None
    (ev_what (Policy.on_rollback p ~point:0))

let deny_point p =
  ignore (Policy.on_rollback p ~point:0);
  ignore (Policy.on_rollback p ~point:0);
  match ev_what (Policy.on_rollback p ~point:0) with
  | Some "deny" -> ()
  | _ -> Alcotest.fail "expected the point to be denied"

let test_adaptive_reprobe () =
  let p = adaptive ~reprobe_after:4 () in
  deny_point p;
  Alcotest.check decision "denied 1" Policy.Deny (Policy.decide p (rq ()));
  Alcotest.check decision "denied 2" Policy.Deny (Policy.decide p (rq ()));
  Alcotest.check decision "denied 3" Policy.Deny (Policy.decide p (rq ()));
  Alcotest.check decision "4th request probes" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  (* the probe's streak is re-armed: one more rollback re-denies *)
  Alcotest.(check (option string)) "probe rollback re-denies" (Some "deny")
    (ev_what (Policy.on_rollback p ~point:0));
  Alcotest.check decision "denied again" Policy.Deny (Policy.decide p (rq ()))

let test_adaptive_probe_commit_rehabilitates () =
  let p = adaptive ~reprobe_after:4 () in
  deny_point p;
  for _ = 1 to 3 do
    ignore (Policy.decide p (rq ()))
  done;
  Alcotest.check decision "probe" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  Policy.on_commit p ~point:0;
  Alcotest.check decision "rehabilitated" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  (* a new denial needs a fresh full streak *)
  ignore (Policy.on_rollback p ~point:0);
  Alcotest.check decision "one rollback is not a streak"
    (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()))

let test_adaptive_payoff_denial () =
  let p = adaptive ~min_samples:4 () in
  (* three expensive rollback-heavy retires: below min_samples, no deny *)
  for _ = 1 to 3 do
    Alcotest.(check (option string)) "before min_samples" None
      (ev_what (Policy.on_retire p ~point:0 ~committed:1.0 ~wasted:10.0))
  done;
  Alcotest.(check (option string)) "wasted-work denial" (Some "deny")
    (ev_what (Policy.on_retire p ~point:0 ~committed:1.0 ~wasted:10.0));
  Alcotest.check decision "denied on payoff" Policy.Deny (Policy.decide p (rq ()));
  (* mostly-committed retires never trip the threshold *)
  let p = adaptive ~min_samples:4 () in
  for _ = 1 to 8 do
    Alcotest.(check (option string)) "profitable point" None
      (ev_what (Policy.on_retire p ~point:0 ~committed:10.0 ~wasted:1.0))
  done

let test_adaptive_cascade_limit () =
  let p = adaptive () in
  let from_spec = rq ~parent_main:false () in
  Alcotest.check decision "clean point cascades" (Policy.Speculate Config.Mixed)
    (Policy.decide p from_spec);
  ignore (Policy.on_rollback p ~point:0);
  Alcotest.check decision "troubled point: no cascade" Policy.Deny
    (Policy.decide p from_spec);
  Alcotest.check decision "main may still fork" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  Alcotest.check decision "other points unaffected"
    (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ~point:1 ~parent_main:false ()))

let test_adaptive_expand_gate () =
  let p = adaptive () in
  Alcotest.check decision "expandable from main" Policy.Expand
    (Policy.decide p (rq ~expandable:true ()));
  Alcotest.check decision "expandable from expand parent" Policy.Expand
    (Policy.decide p (rq ~expandable:true ~parent_main:false ~parent_expand:true ()));
  Alcotest.check decision "expandable from level-2 parent: level 2"
    (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ~expandable:true ~parent_main:false ()));
  Alcotest.check decision "not expandable: level 2" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ()));
  (* a dynamic store demotes the point for good *)
  Policy.on_expand_store p ~point:0;
  Alcotest.check decision "demoted" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ~expandable:true ()));
  Alcotest.check decision "other points still expand" Policy.Expand
    (Policy.decide p (rq ~point:1 ~expandable:true ()));
  (* expand can be turned off wholesale *)
  let p = Policy.adaptive (Config.Policy.adaptive ~expand:false ()) in
  Alcotest.check decision "expand disabled" (Policy.Speculate Config.Mixed)
    (Policy.decide p (rq ~expandable:true ()))

(* Unified trouble counting: an overflow rollback reaches the engine as
   on_overflow + on_rollback but counts once against the point, so the
   deny streak is not double-fed (the old Profile-advisor /
   Thread_manager double count). *)
let test_adaptive_unified_counting () =
  let p = adaptive ~deny_after:3 () in
  ignore (Policy.on_overflow p ~point:0 ~pressure:Policy.Exhaust);
  Alcotest.(check (option string)) "pair 1" None
    (ev_what (Policy.on_rollback p ~point:0));
  ignore (Policy.on_overflow p ~point:0 ~pressure:Policy.Exhaust);
  (* if overflows were double-counted the streak would be 4 here *)
  Alcotest.(check (option string)) "pair 2: single-counted" None
    (ev_what (Policy.on_rollback p ~point:0));
  Alcotest.(check (option string)) "third trouble denies" (Some "deny")
    (ev_what (Policy.on_rollback p ~point:0))

let test_of_config_dispatch () =
  let with_kind kind =
    Policy.of_config
      { Config.default with policy = { Config.Policy.default with Config.Policy.kind } }
  in
  Alcotest.(check string) "static" "static" (Policy.name (with_kind Config.Policy.Static));
  Alcotest.(check string) "adaptive" "adaptive" (Policy.name (with_kind Config.Policy.Adaptive));
  Alcotest.(check string) "hostile" "hostile" (Policy.name (with_kind Config.Policy.Hostile))

(* --- store-free analysis ----------------------------------------------- *)

let analyze src = Store_free.analyze (Mutls_minic.Codegen.compile src)

let test_store_free_analysis () =
  let sf =
    analyze
      {|
int A[8];
int pure_sum(int n) { int s = 0; for (int i = 0; i < n; i++) s = s + A[i]; return s; }
int calls_pure(int n) { return pure_sum(n) + abs(n); }
int writes(int n) { A[0] = n; return n; }
int calls_writer(int n) { return writes(n); }
int main() { for (int i = 0; i < 8; i++) A[i] = i; return calls_pure(4) + calls_writer(2); }
|}
  in
  Alcotest.(check bool) "pure loads are store-free" true
    (Store_free.store_free sf "pure_sum");
  Alcotest.(check bool) "safe extern + pure callee" true
    (Store_free.store_free sf "calls_pure");
  Alcotest.(check bool) "direct store" false (Store_free.store_free sf "writes");
  Alcotest.(check bool) "transitive store" false
    (Store_free.store_free sf "calls_writer");
  Alcotest.(check bool) "main stores" false (Store_free.store_free sf "main");
  Alcotest.(check bool) "unknown name" false (Store_free.store_free sf "nope")

let test_expandable_points () =
  (* mem2reg promotes the locals, so the forking function is store-free
     and its fork point is discovered as expandable *)
  let sf =
    analyze
      {|
int A[16];
int f() {
  int t = 0;
  for (int c = 0; c < 4; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int s = 0;
    for (int i = 0; i < 4; i++) s = s + A[c * 4 + i];
    if (s > 1000000) t = t + 1;
    __builtin_MUTLS_join(0);
  }
  return t;
}
int main() { for (int i = 0; i < 16; i++) A[i] = i; return f(); }
|}
  in
  Alcotest.(check bool) "forker is store-free" true (Store_free.store_free sf "f");
  Alcotest.(check (list (pair string int))) "point discovered" [ ("f", 0) ]
    (Store_free.expandable_points sf)

(* --- mechanism level: get_cpu, Expand runs, zero tracking -------------- *)

let run_policy_workload ~name ~policy ncpus =
  let w = Mutls_workloads.Workloads.find name in
  let m = Mutls_minic.Codegen.compile (w.Mutls_workloads.Workloads.small ()) in
  let seq = Mutls_interp.Eval.run_sequential m in
  let t = Mutls_speculator.Pass.run m in
  let cfg = { Config.default with ncpus } in
  let r = Mutls_interp.Eval.run_tls ?policy cfg t in
  Alcotest.(check string) (name ^ " output") seq.Mutls_interp.Eval.soutput
    r.Mutls_interp.Eval.toutput;
  r

(* Acceptance: under the adaptive policy the store-free workload runs
   Expand segments, and every Expand segment tracked NOTHING in the
   GlobalBuffer (r_buffered counts gbuf reads + writes). *)
let test_expand_zero_tracking () =
  let policy = Policy.adaptive (Config.Policy.adaptive ()) in
  let r = run_policy_workload ~name:"policy-scan" ~policy:(Some policy) 4 in
  let retired = r.Mutls_interp.Eval.tretired in
  let expands =
    List.filter (fun t -> t.Mutls_runtime.Thread_manager.r_expand) retired
  in
  Alcotest.(check bool) "some threads ran expanded" true (expands <> []);
  List.iter
    (fun t ->
      Alcotest.(check int) "expand tracked nothing" 0
        t.Mutls_runtime.Thread_manager.r_buffered)
    expands;
  (* at least one expanded thread committed *)
  Alcotest.(check bool) "an expanded thread committed" true
    (List.exists (fun t -> t.Mutls_runtime.Thread_manager.r_committed) expands)

(* The legality gate in get_cpu: a policy demanding Expand everywhere
   (hostile does, every 3rd request) is coerced to Level 2 wherever the
   static analysis did not bless the point, and the run stays correct. *)
let test_expand_gate_mechanism () =
  let policy = Policy.hostile () in
  (* policy-clean stores per-chunk results, so nothing is expandable *)
  let r = run_policy_workload ~name:"policy-clean" ~policy:(Some policy) 4 in
  List.iter
    (fun t ->
      Alcotest.(check bool) "no thread ran expanded" false
        t.Mutls_runtime.Thread_manager.r_expand)
    r.Mutls_interp.Eval.tretired

let test_adaptive_runs_all_workloads () =
  List.iter
    (fun w ->
      ignore
        (run_policy_workload ~name:w.Mutls_workloads.Workloads.name
           ~policy:
             (Some (Policy.adaptive (Config.Policy.adaptive ())))
           4))
    Mutls_workloads.Workloads.mixed_payoff

(* --- Expand == Level 2 on store-free programs (property) --------------- *)

(* With the cost model flattened so that buffered and plain accesses
   cost the same and per-word validation/commit/finalize cost nothing,
   Level-1 execution is observationally equivalent to Level-2 on
   store-free programs: same output, same end-to-end virtual time.  The
   only difference left is the bookkeeping Expand skips — which is
   exactly what the zero-tracking test pins. *)
let flat_cost =
  { Config.default_cost with
    spec_hit = Config.default_cost.mem;
    spec_miss = Config.default_cost.mem;
    validate_word = 0.0;
    commit_word = 0.0;
    finalize_word = 0.0 }

let always_expand =
  Policy.make ~name:"always-expand" (fun _ -> Policy.Expand)

let never_expand =
  Policy.make ~name:"never-expand" (fun rq ->
      Policy.Speculate rq.Policy.rq_model)

let test_expand_equiv_level2 =
  QCheck.Test.make ~name:"Expand == Level-2 on store-free programs (flat cost)"
    ~count:15
    QCheck.(pair (int_range 2 8) (int_range 1 50))
    (fun (nchunks, mult) ->
      let src =
        Printf.sprintf
          {|
int A[64];
int f() {
  int hits = 0;
  for (int c = 0; c < %d; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int s = 0;
    for (int i = 0; i < 8; i++) {
      int v = A[c * 8 + i];
      s = s + v * %d + (v ^ c);
    }
    if (s > 100000000) hits = hits + 1;
    __builtin_MUTLS_join(0);
  }
  return hits;
}
int main() {
  for (int i = 0; i < 64; i++) A[i] = (i * 131 + 7) %% 997;
  int h = f();
  print_int(h);
  print_newline();
  return h;
}
|}
          nchunks mult
      in
      let m = Mutls_minic.Codegen.compile src in
      let seq = Mutls_interp.Eval.run_sequential m in
      let t = Mutls_speculator.Pass.run m in
      let cfg = { Config.default with ncpus = 4; cost = flat_cost } in
      let a = Mutls_interp.Eval.run_tls ~policy:always_expand cfg t in
      let b = Mutls_interp.Eval.run_tls ~policy:never_expand cfg t in
      a.Mutls_interp.Eval.toutput = seq.Mutls_interp.Eval.soutput
      && b.Mutls_interp.Eval.toutput = seq.Mutls_interp.Eval.soutput
      && a.Mutls_interp.Eval.tfinish = b.Mutls_interp.Eval.tfinish
      && List.exists
           (fun t -> t.Mutls_runtime.Thread_manager.r_expand)
           a.Mutls_interp.Eval.tretired)
  |> QCheck_alcotest.to_alcotest

(* --- the acceptance bar, in miniature ---------------------------------- *)

let test_adaptive_beats_statics () =
  let adaptive_total =
    Mutls.Experiments.suite_time ~policy:(Config.Policy.adaptive ()) ~ncpus:8 ()
  in
  List.iter
    (fun (label, p) ->
      if label <> "adaptive" then
        let static_total = Mutls.Experiments.suite_time ~policy:p ~ncpus:8 () in
        if adaptive_total > static_total then
          Alcotest.failf "adaptive (%.0f) regresses vs %s (%.0f) at 8 CPUs"
            adaptive_total label static_total)
    Mutls.Experiments.policy_family

(* --- chaos under adaptive and hostile policies ------------------------- *)

(* The campaign's oracle must stay silent when every generated case runs
   under the adaptive engine, and even under the adversarial policy —
   decisions may be arbitrarily bad, execution must stay correct. *)
let chaos_campaign kind () =
  let c =
    Mutls.Chaos.run_campaign ~policy:kind ~seed:20260808 ~runs:25 ()
  in
  match c.Mutls.Chaos.failed with
  | None -> ()
  | Some (case, r) ->
    Alcotest.failf "case %d failed under %s policy: %s"
      case.Mutls.Chaos.label
      (Config.Policy.kind_to_string kind)
      (match r.Mutls.Chaos.failure with
      | Some f -> Mutls.Chaos.failure_to_string f
      | None -> "?")

let test_chaos_policy_json_round_trip () =
  let case = Mutls.Chaos.gen_case ~seed:7 3 in
  let case = { case with Mutls.Chaos.policy = Config.Policy.Adaptive } in
  let j = Mutls.Chaos.case_to_json case in
  let case' = Mutls.Chaos.case_of_json j in
  Alcotest.(check bool) "policy survives JSON" true
    (case'.Mutls.Chaos.policy = Config.Policy.Adaptive);
  (* pre-policy repro files (no "policy" member) default to Static *)
  let strip = function
    | Mutls.Json.Obj fields ->
      Mutls.Json.Obj (List.filter (fun (k, _) -> k <> "policy") fields)
    | j -> j
  in
  Alcotest.(check bool) "absent field defaults to static" true
    ((Mutls.Chaos.case_of_json (strip j)).Mutls.Chaos.policy
    = Config.Policy.Static)

let tests =
  [
    Alcotest.test_case "Config.Policy kind round-trip" `Quick test_kind_round_trip;
    Alcotest.test_case "Config.Policy builders" `Quick test_builders;
    Alcotest.test_case "Config.Policy validation" `Quick test_validate;
    Alcotest.test_case "deprecated flat shims fold" `Quick test_deprecated_shims;
    Alcotest.test_case "static backoff transitions" `Quick test_static_backoff_transitions;
    Alcotest.test_case "static without backoff never vetoes" `Quick
      test_static_no_backoff_is_permissive;
    Alcotest.test_case "static overflow degrade" `Quick test_static_degrade;
    Alcotest.test_case "adaptive deny streak" `Quick test_adaptive_deny_streak;
    Alcotest.test_case "adaptive deny -> re-probe" `Quick test_adaptive_reprobe;
    Alcotest.test_case "adaptive probe commit rehabilitates" `Quick
      test_adaptive_probe_commit_rehabilitates;
    Alcotest.test_case "adaptive payoff denial" `Quick test_adaptive_payoff_denial;
    Alcotest.test_case "adaptive cascade limit" `Quick test_adaptive_cascade_limit;
    Alcotest.test_case "adaptive Expand gate" `Quick test_adaptive_expand_gate;
    Alcotest.test_case "unified trouble counting" `Quick test_adaptive_unified_counting;
    Alcotest.test_case "of_config dispatch" `Quick test_of_config_dispatch;
    Alcotest.test_case "store-free analysis" `Quick test_store_free_analysis;
    Alcotest.test_case "expandable fork points" `Quick test_expandable_points;
    Alcotest.test_case "Expand segments track nothing" `Quick test_expand_zero_tracking;
    Alcotest.test_case "Expand legality gate (mechanism)" `Quick
      test_expand_gate_mechanism;
    Alcotest.test_case "adaptive runs the mixed-payoff suite" `Quick
      test_adaptive_runs_all_workloads;
    test_expand_equiv_level2;
    Alcotest.test_case "adaptive at or below statics (8 CPUs)" `Slow
      test_adaptive_beats_statics;
    Alcotest.test_case "chaos campaign, adaptive policy" `Slow
      (chaos_campaign Config.Policy.Adaptive);
    Alcotest.test_case "chaos campaign, hostile policy" `Slow
      (chaos_campaign Config.Policy.Hostile);
    Alcotest.test_case "chaos policy JSON round-trip" `Quick
      test_chaos_policy_json_round_trip;
  ]
