(* Property-based tests: randomly generated MiniC expressions evaluated
   by the full compile+interpret pipeline must agree with a reference
   evaluator, and random annotated programs must be TLS-equivalent. *)

module V = Mutls_interp.Value

(* --- random integer expressions ---------------------------------------- *)

(* Expression AST mirrored in OCaml, printable as MiniC and evaluable
   with two's-complement int64 semantics.  Division/modulo guard their
   denominators to stay trap-free. *)
type e =
  | Lit of int
  | Var of int (* v0..v3 *)
  | Add of e * e
  | Sub of e * e
  | Mul of e * e
  | Div of e * e
  | Mod of e * e
  | Neg of e
  | Band of e * e
  | Bor of e * e
  | Bxor of e * e
  | Shl of e * e
  | Cmp of e * e
  | Ternary of e * e * e

let rec pp = function
  | Lit n -> string_of_int n
  | Var k -> Printf.sprintf "v%d" k
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (pp a) (pp b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (pp a) (pp b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (pp a) (pp b)
  | Div (a, b) -> Printf.sprintf "(%s / (%s == 0 ? 7 : %s))" (pp a) (pp b) (pp b)
  | Mod (a, b) -> Printf.sprintf "(%s %% (%s == 0 ? 7 : %s))" (pp a) (pp b) (pp b)
  | Neg a -> Printf.sprintf "(- %s)" (pp a)
  | Band (a, b) -> Printf.sprintf "(%s & %s)" (pp a) (pp b)
  | Bor (a, b) -> Printf.sprintf "(%s | %s)" (pp a) (pp b)
  | Bxor (a, b) -> Printf.sprintf "(%s ^ %s)" (pp a) (pp b)
  | Shl (a, b) -> Printf.sprintf "(%s << (%s & 7))" (pp a) (pp b)
  | Cmp (a, b) -> Printf.sprintf "(%s < %s)" (pp a) (pp b)
  | Ternary (c, a, b) -> Printf.sprintf "(%s ? %s : %s)" (pp c) (pp a) (pp b)

let rec eval env = function
  | Lit n -> Int64.of_int n
  | Var k -> env.(k)
  | Add (a, b) -> Int64.add (eval env a) (eval env b)
  | Sub (a, b) -> Int64.sub (eval env a) (eval env b)
  | Mul (a, b) -> Int64.mul (eval env a) (eval env b)
  | Div (a, b) ->
    let d = eval env b in
    Int64.div (eval env a) (if d = 0L then 7L else d)
  | Mod (a, b) ->
    let d = eval env b in
    Int64.rem (eval env a) (if d = 0L then 7L else d)
  | Neg a -> Int64.neg (eval env a)
  | Band (a, b) -> Int64.logand (eval env a) (eval env b)
  | Bor (a, b) -> Int64.logor (eval env a) (eval env b)
  | Bxor (a, b) -> Int64.logxor (eval env a) (eval env b)
  | Shl (a, b) ->
    Int64.shift_left (eval env a) (Int64.to_int (Int64.logand (eval env b) 7L))
  | Cmp (a, b) -> if eval env a < eval env b then 1L else 0L
  | Ternary (c, a, b) -> if eval env c <> 0L then eval env a else eval env b

let gen_expr =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      if n <= 0 then
        oneof [ map (fun i -> Lit i) (int_range (-100) 100);
                map (fun k -> Var k) (int_range 0 3) ]
      else
        let sub = self (n / 2) in
        oneof
          [ map2 (fun a b -> Add (a, b)) sub sub;
            map2 (fun a b -> Sub (a, b)) sub sub;
            map2 (fun a b -> Mul (a, b)) sub sub;
            map2 (fun a b -> Div (a, b)) sub sub;
            map2 (fun a b -> Mod (a, b)) sub sub;
            map (fun a -> Neg a) sub;
            map2 (fun a b -> Band (a, b)) sub sub;
            map2 (fun a b -> Bor (a, b)) sub sub;
            map2 (fun a b -> Bxor (a, b)) sub sub;
            map2 (fun a b -> Shl (a, b)) sub sub;
            map2 (fun a b -> Cmp (a, b)) sub sub;
            map3 (fun c a b -> Ternary (c, a, b)) sub sub sub ])

let arb_expr = QCheck.make ~print:pp gen_expr

(* small variant for whole-program TLS tests: very large expression
   trees legitimately overflow the RegisterBuffer (a documented pass
   error), which is not what this property is about *)
let arb_expr_small =
  QCheck.make ~print:pp QCheck.Gen.(sized_size (int_bound 5) (fix (fun self n ->
      if n <= 0 then
        oneof [ map (fun i -> Lit i) (int_range (-100) 100);
                map (fun k -> Var k) (int_range 0 3) ]
      else
        let sub = self (n / 2) in
        oneof
          [ map2 (fun a b -> Add (a, b)) sub sub;
            map2 (fun a b -> Mul (a, b)) sub sub;
            map2 (fun a b -> Div (a, b)) sub sub;
            map2 (fun a b -> Bxor (a, b)) sub sub;
            map2 (fun a b -> Shl (a, b)) sub sub;
            map2 (fun a b -> Cmp (a, b)) sub sub;
            map3 (fun c a b -> Ternary (c, a, b)) sub sub sub ])))

let compile_and_run expr env =
  let src =
    Printf.sprintf
      "int main() { int v0 = %Ld; int v1 = %Ld; int v2 = %Ld; int v3 = %Ld;\n\
      \  return %s; }"
      env.(0) env.(1) env.(2) env.(3) (pp expr)
  in
  let m = Mutls_minic.Codegen.compile src in
  match (Mutls_interp.Eval.run_sequential m).Mutls_interp.Eval.sret with
  | Some (V.VI v) -> v
  | _ -> failwith "no integer result"

let test_expr_semantics =
  QCheck.Test.make ~name:"MiniC expressions vs reference evaluator" ~count:120
    (QCheck.pair arb_expr
       (QCheck.quad (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)
          (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50)))
    (fun (expr, (a, b, c, d)) ->
      let env = [| Int64.of_int a; Int64.of_int b; Int64.of_int c; Int64.of_int d |] in
      compile_and_run expr env = eval env expr)
  |> QCheck_alcotest.to_alcotest

(* --- random chunked loops are TLS-equivalent --------------------------- *)

(* A random per-chunk expression over the chunk index: the classic
   chained speculation pattern, randomly generated. *)
let test_random_tls_equivalence =
  QCheck.Test.make ~name:"random chunked loops TLS == sequential" ~count:20
    arb_expr_small
    (fun expr ->
      let src =
        Printf.sprintf
          {|
int out[16];
int main() {
  for (int c = 0; c < 16; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int v0 = c; int v1 = c + 1; int v2 = c * 2; int v3 = 7 - c;
    int r = %s;
    for (int k = 0; k < 20; k++) r = r + k * c;
    out[c] = r;
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < 16; c++) t = t + out[c] %% 100000;
  print_int(t);
  print_newline();
  return 0;
}
|}
          (pp expr)
      in
      let m = Mutls_minic.Codegen.compile src in
      let seq = Mutls_interp.Eval.run_sequential m in
      let t = Mutls_speculator.Pass.run m in
      let cfg = { Mutls_runtime.Config.default with ncpus = 4 } in
      let r = Mutls_interp.Eval.run_tls cfg t in
      r.Mutls_interp.Eval.toutput = seq.Mutls_interp.Eval.soutput)
  |> QCheck_alcotest.to_alcotest

(* --- memory-pressure resilience ----------------------------------------- *)

(* Enabling the spill tier must be free until pressure: for a program
   whose per-thread footprint fits the home slots without hash
   conflicts (park-free by construction: a small contiguous array),
   output AND virtual time are identical with the tier off and on. *)
let test_spill_tier_free =
  QCheck.Test.make
    ~name:"spill tier free for park-free programs (output and cycles)"
    ~count:8 arb_expr_small
    (fun expr ->
      let src =
        Printf.sprintf
          {|
int out[16];
int main() {
  for (int c = 0; c < 8; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int v0 = c; int v1 = c + 1; int v2 = c * 2; int v3 = 7 - c;
    int r = %s;
    for (int k = 0; k < 12; k++) r = r + k * c;
    out[c] = r;
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < 8; c++) t = t + out[c] %% 100000;
  print_int(t);
  print_newline();
  return 0;
}
|}
          (pp expr)
      in
      let m = Mutls_minic.Codegen.compile src in
      let t = Mutls_speculator.Pass.run m in
      let run buffers =
        let cfg = { Mutls_runtime.Config.default with ncpus = 4; buffers } in
        Mutls_interp.Eval.run_tls cfg t
      in
      let off = run Mutls_runtime.Config.Buffers.default in
      let on_ =
        run
          { Mutls_runtime.Config.Buffers.default with
            Mutls_runtime.Config.Buffers.spill_slots = 4096
          }
      in
      off.Mutls_interp.Eval.toutput = on_.Mutls_interp.Eval.toutput
      && off.Mutls_interp.Eval.tfinish = on_.Mutls_interp.Eval.tfinish)
  |> QCheck_alcotest.to_alcotest

(* Forced overflow pressure: home slots far smaller than the scattered
   per-chunk footprint, so every speculative thread spills (and
   cross-chunk aliasing forces genuine rollbacks too).  Whatever the
   memory system does under pressure, TLS output must equal
   sequential. *)
let test_pressure_tls_equivalence =
  QCheck.Test.make
    ~name:"random loops TLS == sequential under overflow pressure" ~count:6
    arb_expr_small
    (fun expr ->
      let src =
        Printf.sprintf
          {|
int out[16];
int A[512];
int main() {
  for (int c = 0; c < 12; c++) {
    __builtin_MUTLS_fork(0, mixed);
    int v0 = c; int v1 = c + 1; int v2 = c * 2; int v3 = 7 - c;
    int r = %s;
    for (int k = 0; k < 40; k++) {
      int i = (c * 97 + k * 31) %% 512;
      A[i] = A[i] + r + k;
    }
    out[c] = r;
    __builtin_MUTLS_join(0);
  }
  int t = 0;
  for (int c = 0; c < 12; c++) t = t + out[c] %% 100000;
  for (int i = 0; i < 512; i++) t = t + A[i] %% 1000;
  print_int(t);
  print_newline();
  return 0;
}
|}
          (pp expr)
      in
      let m = Mutls_minic.Codegen.compile src in
      let seq = Mutls_interp.Eval.run_sequential m in
      let t = Mutls_speculator.Pass.run m in
      let cfg =
        { Mutls_runtime.Config.default with
          ncpus = 4;
          buffer_slots = 16;
          temp_slots = 2;
          buffers =
            { Mutls_runtime.Config.Buffers.default with
              Mutls_runtime.Config.Buffers.spill_slots = 128
            }
        }
      in
      let r = Mutls_interp.Eval.run_tls cfg t in
      r.Mutls_interp.Eval.toutput = seq.Mutls_interp.Eval.soutput)
  |> QCheck_alcotest.to_alcotest

(* --- trace serialisation properties ------------------------------------- *)

module Trace = Mutls_obs.Trace

let all_reasons =
  Trace.[ Conflict; Stale_local; Abandoned; Buffer_overflow; Bad_access ]

let test_reason_round_trip () =
  List.iter
    (fun r ->
      match Trace.rollback_reason_of_string (Trace.rollback_reason_to_string r) with
      | Some r' ->
        Alcotest.(check bool)
          ("round trip " ^ Trace.rollback_reason_to_string r)
          true (r = r')
      | None ->
        Alcotest.failf "%s did not parse back"
          (Trace.rollback_reason_to_string r))
    all_reasons;
  Alcotest.(check bool) "unknown reason is None" true
    (Trace.rollback_reason_of_string "bogus" = None)

(* Random records over every event variant.  Costs and times are exact
   binary fractions so float round trips are never the failure cause —
   the property targets the schema, not IEEE printing. *)
let gen_record =
  let open QCheck.Gen in
  let cost = map (fun n -> float_of_int n /. 4.0) (int_range 0 10_000_000) in
  let id = int_range (-1) 5000 in
  let reason = oneofl all_reasons in
  let category =
    oneofl
      [ "work"; "join"; "idle"; "fork"; "find CPU"; "validation"; "commit";
        "finalize"; "wasted work"; "overflow" ]
  in
  let stats = list_size (int_bound 5) (pair category cost) in
  let event =
    oneof
      [
        map3 (fun child child_rank point -> Trace.Fork { child; child_rank; point })
          id id id;
        map2 (fun child_rank counter -> Trace.Speculate { child_rank; counter })
          id small_nat;
        map2 (fun counter stop -> Trace.Check { counter; stop }) small_nat bool;
        map3 (fun words ok addr -> Trace.Validate { words; ok; addr })
          small_nat bool (opt (int_range 0 0xFFFFFF));
        map2 (fun words counter -> Trace.Commit { words; counter }) small_nat
          small_nat;
        map2 (fun reason point -> Trace.Rollback { reason; point }) reason id;
        map (fun point -> Trace.Nosync { point }) id;
        (* -1/0 both serialise argless and parse back as -1, so the
           line-level round trip stays byte-stable for all three *)
        map (fun spill_cap -> Trace.Overflow { spill_cap })
          (oneofl [ -1; 0; 16; 4096 ]);
        map2 (fun child committed -> Trace.Join { child; committed }) id bool;
        map (fun counter -> Trace.Barrier { counter }) small_nat;
        map3 (fun committed runtime stats -> Trace.Retire { committed; runtime; stats })
          bool cost stats;
        map2 (fun category cost -> Trace.Charge { category; cost }) category cost;
        map (fun addr -> Trace.Spill { addr }) (int_range 0 0xFFFFFF);
        map (fun addr -> Trace.Park { addr }) (int_range 0 0xFFFFFF);
        map2 (fun push depth -> Trace.Frame { push; depth }) bool small_nat;
        map2 (fun what info -> Trace.Sched { what; info })
          (oneofl [ "wake"; "sleep"; "schedule" ]) id;
        return Trace.Run_end;
      ]
  in
  map2
    (fun (time, thread) (rank, (main, event)) ->
      { Trace.time; thread; rank; main; event })
    (pair cost id)
    (pair id (pair bool event))

let arb_record =
  QCheck.make ~print:Trace.record_to_jsonl gen_record

(* encode -> parse -> re-encode must be byte-stable for every variant,
   including the enriched Validate.addr / Rollback.point fields. *)
let test_jsonl_byte_stable =
  QCheck.Test.make ~name:"trace jsonl encode/parse/re-encode byte-stable"
    ~count:500 arb_record (fun r ->
      let line = Trace.record_to_jsonl r in
      let r' = Trace.record_of_jsonl line in
      Trace.record_to_jsonl r' = line)
  |> QCheck_alcotest.to_alcotest

let tests =
  [
    test_expr_semantics;
    test_random_tls_equivalence;
    test_spill_tier_free;
    test_pressure_tls_equivalence;
    Alcotest.test_case "rollback_reason string round trip" `Quick
      test_reason_round_trip;
    test_jsonl_byte_stable;
  ]
