(* TLS runtime data structures: address-space registration, the
   GlobalBuffer read/write sets (including sub-word marks, hash
   conflicts, the temporary buffer and overflow), and the LocalBuffer. *)

module AS = Mutls_runtime.Address_space
module GB = Mutls_runtime.Global_buffer
module LB = Mutls_runtime.Local_buffer

(* A little main memory for buffer tests. *)
let make_mem () =
  let backing = Bytes.make (1 lsl 16) '\000' in
  let mem =
    {
      Mutls_runtime.Memio.read_word = (fun a -> Bytes.get_int64_le backing a);
      write_word = (fun a v -> Bytes.set_int64_le backing a v);
      read_byte = (fun a -> Char.code (Bytes.get backing a));
      write_byte = (fun a v -> Bytes.set backing a (Char.chr (v land 0xff)));
    }
  in
  (backing, mem)

(* --- address space ----------------------------------------------------- *)

let test_address_space_basic () =
  let t = AS.create () in
  AS.register t 1000 100;
  Alcotest.(check bool) "inside" true (AS.contains t 1000);
  Alcotest.(check bool) "inside end" true (AS.contains t 1099);
  Alcotest.(check bool) "past end" false (AS.contains t 1100);
  Alcotest.(check bool) "before" false (AS.contains t 999);
  Alcotest.(check bool) "range fits" true (AS.contains_range t 1050 50);
  Alcotest.(check bool) "range overflows" false (AS.contains_range t 1050 51)

let test_address_space_merge () =
  let t = AS.create () in
  AS.register t 1000 100;
  AS.register t 1100 100;
  (* adjacent ranges merge *)
  Alcotest.(check int) "merged" 1 (List.length (AS.ranges t));
  AS.register t 3000 10;
  Alcotest.(check int) "disjoint" 2 (List.length (AS.ranges t));
  AS.register t 1100 2000;
  (* overlapping both *)
  Alcotest.(check int) "overlap merged" 1 (List.length (AS.ranges t))

let test_address_space_unregister () =
  let t = AS.create () in
  AS.register t 1000 300;
  AS.unregister t 1100 100;
  (* split *)
  Alcotest.(check bool) "left kept" true (AS.contains t 1050);
  Alcotest.(check bool) "hole" false (AS.contains t 1150);
  Alcotest.(check bool) "right kept" true (AS.contains t 1250);
  Alcotest.(check int) "split in two" 2 (List.length (AS.ranges t))

let test_address_space_model =
  QCheck.Test.make ~name:"address space vs naive model" ~count:100
    QCheck.(
      pair
        (list (pair (int_range 1 200) (int_range 1 30)))
        (list (int_range 0 300)))
    (fun (ops, probes) ->
      let t = AS.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (start, size) ->
          let start = start * 10 in
          AS.register t start size;
          for a = start to start + size - 1 do
            Hashtbl.replace model a ()
          done)
        ops;
      List.for_all
        (fun p ->
          let p = p * 10 in
          AS.contains t p = Hashtbl.mem model p)
        probes)
  |> QCheck_alcotest.to_alcotest

(* --- global buffer ------------------------------------------------------ *)

let test_gb_read_your_writes () =
  let _, mem = make_mem () in
  let gb = GB.create ~slots:256 ~temp_slots:8 () in
  ignore (GB.write gb mem 0x100 8 42L);
  let v, hit = GB.read gb mem 0x100 8 in
  Alcotest.(check int64) "read back" 42L v;
  Alcotest.(check bool) "write-set hit" true hit

let test_gb_read_from_memory () =
  let backing, mem = make_mem () in
  Bytes.set_int64_le backing 0x200 7L;
  let gb = GB.create ~slots:256 ~temp_slots:8 () in
  let v, hit = GB.read gb mem 0x200 8 in
  Alcotest.(check int64) "fetched" 7L v;
  Alcotest.(check bool) "first read is a miss" false hit;
  let _, hit2 = GB.read gb mem 0x200 8 in
  Alcotest.(check bool) "second read hits" true hit2

let test_gb_writes_not_visible_before_commit () =
  let backing, mem = make_mem () in
  let gb = GB.create ~slots:256 ~temp_slots:8 () in
  ignore (GB.write gb mem 0x300 8 99L);
  Alcotest.(check int64) "memory untouched" 0L (Bytes.get_int64_le backing 0x300);
  ignore (GB.commit gb mem);
  Alcotest.(check int64) "committed" 99L (Bytes.get_int64_le backing 0x300)

let test_gb_validate () =
  let backing, mem = make_mem () in
  Bytes.set_int64_le backing 0x400 5L;
  let gb = GB.create ~slots:256 ~temp_slots:8 () in
  ignore (GB.read gb mem 0x400 8);
  Alcotest.(check int) "validates clean" 1 (GB.validate gb mem);
  (* non-speculative write changes the value under our feet *)
  Bytes.set_int64_le backing 0x400 6L;
  (* the exception carries the conflicting word address *)
  Alcotest.check_raises "conflict detected" (GB.Invalid_read 0x400) (fun () ->
      ignore (GB.validate gb mem))

let test_gb_subword () =
  let backing, mem = make_mem () in
  Bytes.set_int64_le backing 0x500 0x1122334455667788L;
  let gb = GB.create ~slots:256 ~temp_slots:8 () in
  (* write one byte speculatively *)
  ignore (GB.write gb mem 0x502 1 0xABL);
  let v, _ = GB.read gb mem 0x502 1 in
  Alcotest.(check int64) "byte read back" 0xABL v;
  (* unwritten bytes of the word keep their fetched value *)
  let w, _ = GB.read gb mem 0x500 8 in
  Alcotest.(check int64) "merged word view" 0x1122334455AB7788L w;
  ignore (GB.commit gb mem);
  (* only the marked byte reaches memory *)
  Alcotest.(check int64) "marked byte committed" 0x1122334455AB7788L
    (Bytes.get_int64_le backing 0x500)

let test_gb_subword_i32 () =
  let backing, mem = make_mem () in
  Bytes.set_int64_le backing 0x600 (-1L);
  let gb = GB.create ~slots:256 ~temp_slots:8 () in
  ignore (GB.write gb mem 0x600 4 0x12345678L);
  ignore (GB.commit gb mem);
  Alcotest.(check int64) "low half replaced" 0xFFFFFFFF12345678L
    (Bytes.get_int64_le backing 0x600)

let test_gb_hash_conflict_temp () =
  let backing, mem = make_mem () in
  let gb = GB.create ~slots:16 ~temp_slots:4 () in
  (* slots=16: addresses 0x100 and 0x100 + 16*8 collide *)
  let a1 = 0x100 and a2 = 0x100 + (16 * 8) in
  ignore (GB.write gb mem a1 8 1L);
  ignore (GB.write gb mem a2 8 2L);
  Alcotest.(check bool) "conflict pending" true (GB.conflict_pending gb);
  let v1, _ = GB.read gb mem a1 8 in
  let v2, _ = GB.read gb mem a2 8 in
  Alcotest.(check int64) "primary slot" 1L v1;
  Alcotest.(check int64) "temp entry" 2L v2;
  ignore (GB.commit gb mem);
  Alcotest.(check int64) "primary committed" 1L (Bytes.get_int64_le backing a1);
  Alcotest.(check int64) "temp committed" 2L (Bytes.get_int64_le backing a2)

let test_gb_overflow () =
  let _, mem = make_mem () in
  let gb = GB.create ~slots:2 ~temp_slots:2 () in
  (* all addresses collide into 2 slots; temp holds 2; the next raises *)
  Alcotest.check_raises "overflow" GB.Overflow (fun () ->
      for i = 0 to 10 do
        ignore (GB.write gb mem (0x100 + (2 * 8 * i)) 8 (Int64.of_int i))
      done)

let test_gb_finalize_reuse () =
  let backing, mem = make_mem () in
  let gb = GB.create ~slots:64 ~temp_slots:4 () in
  ignore (GB.write gb mem 0x700 8 1L);
  ignore (GB.read gb mem 0x708 8);
  let n = GB.finalize gb in
  Alcotest.(check bool) "cleared some slots" true (n >= 2);
  Alcotest.(check int) "read set empty" 0 (GB.read_set_size gb);
  Alcotest.(check int) "write set empty" 0 (GB.write_set_size gb);
  (* discarded writes never reach memory *)
  Alcotest.(check int64) "discarded" 0L (Bytes.get_int64_le backing 0x700)

(* Whole-word stores must mark all eight bytes exactly as the per-byte
   path would: a full-word write followed by a sub-word overwrite then
   commit exercises the mark bytes across both store paths. *)
let test_gb_wholeword_marks () =
  let backing, mem = make_mem () in
  Bytes.set_int64_le backing 0x800 0x0102030405060708L;
  let gb = GB.create ~slots:256 ~temp_slots:8 () in
  ignore (GB.write gb mem 0x800 8 0x1111111111111111L);
  ignore (GB.write gb mem 0x803 1 0xEEL);
  ignore (GB.commit gb mem);
  Alcotest.(check int64) "word then byte committed" 0x11111111EE111111L
    (Bytes.get_int64_le backing 0x800);
  (* and the reverse order: byte marks first, then a whole-word store
     must cover them all *)
  Bytes.set_int64_le backing 0x900 (-1L);
  let gb2 = GB.create ~slots:256 ~temp_slots:8 () in
  ignore (GB.write gb2 mem 0x901 1 0x22L);
  ignore (GB.write gb2 mem 0x900 8 0x3333333333333333L);
  ignore (GB.commit gb2 mem);
  Alcotest.(check int64) "byte then word committed" 0x3333333333333333L
    (Bytes.get_int64_le backing 0x900)

(* Temp entries live in the prefix [0, temp_count); after finalize the
   buffer must be fully reusable and old entries unreachable. *)
let test_gb_temp_prefix_reuse () =
  let backing, mem = make_mem () in
  let gb = GB.create ~slots:16 ~temp_slots:4 () in
  let stride = 16 * 8 in
  (* 0x100 occupies the slot; the next three collide into temp *)
  ignore (GB.write gb mem 0x100 8 1L);
  ignore (GB.write gb mem (0x100 + stride) 8 2L);
  ignore (GB.write gb mem (0x100 + (2 * stride)) 8 3L);
  ignore (GB.write gb mem (0x100 + (3 * stride)) 8 4L);
  let v3, hit3 = GB.read gb mem (0x100 + (3 * stride)) 8 in
  Alcotest.(check int64) "last temp entry found" 4L v3;
  Alcotest.(check bool) "temp read is a hit" true hit3;
  ignore (GB.finalize gb);
  (* stale temp entries must not shadow post-finalize reads *)
  Bytes.set_int64_le backing (0x100 + stride) 77L;
  let v, hit = GB.read gb mem (0x100 + stride) 8 in
  Alcotest.(check int64) "fetches fresh memory" 77L v;
  Alcotest.(check bool) "no stale temp hit" false hit;
  (* and the temp buffer is reusable to full capacity *)
  ignore (GB.write gb mem 0x100 8 10L);
  ignore (GB.write gb mem (0x100 + stride) 8 20L);
  ignore (GB.write gb mem (0x100 + (2 * stride)) 8 30L);
  ignore (GB.write gb mem (0x100 + (3 * stride)) 8 40L);
  ignore (GB.write gb mem (0x100 + (4 * stride)) 8 50L);
  ignore (GB.commit gb mem);
  Alcotest.(check int64) "reused temp slot committed" 50L
    (Bytes.get_int64_le backing (0x100 + (4 * stride)))

(* model-based property: buffered reads/writes behave like a shadow map
   over memory, and commit makes memory agree with the shadow *)
let test_gb_model =
  QCheck.Test.make ~name:"global buffer vs shadow model" ~count:200
    QCheck.(list (triple bool (int_range 0 500) small_int))
    (fun ops ->
      let backing, mem = make_mem () in
      let gb = GB.create ~slots:1024 ~temp_slots:64 () in
      let shadow = Hashtbl.create 64 in
      (* addresses are 8-aligned in 0x1000.. *)
      let ok = ref true in
      (try
         List.iter
           (fun (is_write, slot, value) ->
             let addr = 0x1000 + (8 * slot) in
             if is_write then begin
               ignore (GB.write gb mem addr 8 (Int64.of_int value));
               Hashtbl.replace shadow addr (Int64.of_int value)
             end
             else begin
               let v, _ = GB.read gb mem addr 8 in
               let expect =
                 match Hashtbl.find_opt shadow addr with
                 | Some x -> x
                 | None -> Bytes.get_int64_le backing addr
               in
               if v <> expect then ok := false
             end)
           ops;
         ignore (GB.commit gb mem);
         Hashtbl.iter
           (fun addr v ->
             if Bytes.get_int64_le backing addr <> v then ok := false)
           shadow
       with GB.Overflow -> ());
      !ok)
  |> QCheck_alcotest.to_alcotest

(* --- pressure-resilience layers: spill tier, shards, line mode ---------- *)

(* The exact access pattern that overflows the seed config must survive
   with the spill tier on: conflicts spill instead of parking, nothing
   stalls, and spilled entries read back and commit like home ones. *)
let test_gb_spill_tier () =
  let backing, mem = make_mem () in
  let gb = GB.create ~spill_slots:16 ~slots:2 ~temp_slots:2 () in
  Alcotest.(check int) "tier capacity" 16 (GB.spill_capacity gb);
  for i = 0 to 10 do
    ignore (GB.write gb mem (0x100 + (2 * 8 * i)) 8 (Int64.of_int i))
  done;
  Alcotest.(check bool) "entries spilled" true (GB.spills gb > 0);
  Alcotest.(check int) "tier occupancy" (GB.spills gb) (GB.spill_size gb);
  Alcotest.(check bool) "no stall request" false (GB.conflict_pending gb);
  let v, hit = GB.read gb mem (0x100 + (2 * 8 * 7)) 8 in
  Alcotest.(check int64) "spilled entry read back" 7L v;
  Alcotest.(check bool) "spilled read hits" true hit;
  ignore (GB.commit gb mem);
  for i = 0 to 10 do
    Alcotest.(check int64)
      (Printf.sprintf "word %d committed" i)
      (Int64.of_int i)
      (Bytes.get_int64_le backing (0x100 + (2 * 8 * i)))
  done

let test_gb_spill_exhaust () =
  let _, mem = make_mem () in
  let gb = GB.create ~spill_slots:2 ~slots:2 ~temp_slots:2 () in
  (* Overflow is reserved for true tier exhaustion *)
  Alcotest.check_raises "tier exhaustion" GB.Overflow (fun () ->
      for i = 0 to 10 do
        ignore (GB.write gb mem (0x100 + (2 * 8 * i)) 8 (Int64.of_int i))
      done);
  Alcotest.(check int) "tier really filled first" 2 (GB.spills gb)

let test_gb_spill_validate () =
  let backing, mem = make_mem () in
  Bytes.set_int64_le backing 0x100 5L;
  Bytes.set_int64_le backing 0x110 6L;
  let gb = GB.create ~spill_slots:16 ~slots:2 ~temp_slots:2 () in
  ignore (GB.read gb mem 0x100 8);
  (* collides with 0x100's home slot, lands in the spill tier *)
  ignore (GB.read gb mem 0x110 8);
  Alcotest.(check int) "both words checked" 2 (GB.validate gb mem);
  (* a conflicting store under a *spilled* read must still be caught *)
  Bytes.set_int64_le backing 0x110 7L;
  Alcotest.check_raises "spilled read validated" (GB.Invalid_read 0x110)
    (fun () -> ignore (GB.validate gb mem))

let test_gb_spill_finalize_reuse () =
  let backing, mem = make_mem () in
  let gb = GB.create ~spill_slots:16 ~slots:2 ~temp_slots:2 () in
  ignore (GB.write gb mem 0x100 8 1L);
  ignore (GB.write gb mem 0x110 8 2L);
  Alcotest.(check int) "one entry in the tier" 1 (GB.spill_size gb);
  ignore (GB.finalize gb);
  Alcotest.(check int) "tier cleared" 0 (GB.spill_size gb);
  (* stale spill entries must not shadow post-finalize reads *)
  Bytes.set_int64_le backing 0x110 77L;
  let v, hit = GB.read gb mem 0x110 8 in
  Alcotest.(check int64) "fetches fresh memory" 77L v;
  Alcotest.(check bool) "no stale spill hit" false hit;
  (* the lifetime counter survives finalize (pooled-buffer telemetry) *)
  Alcotest.(check int) "cumulative spills kept" 1 (GB.spills gb);
  (* discarded spilled writes never reach memory *)
  Alcotest.(check int64) "discarded" 0L (Bytes.get_int64_le backing 0x100)

let test_gb_shards () =
  let backing, mem = make_mem () in
  let gb = GB.create ~shards:4 ~slots:64 ~temp_slots:4 () in
  Alcotest.(check int) "shard count" 4 (GB.shard_count gb);
  (* consecutive 64-byte lines interleave round-robin across shards;
     the word offset inside the line varies so the two lines landing in
     each shard occupy distinct slots of its 16-slot map *)
  let addr l = 0x1000 + (64 * l) + (8 * (l lsr 2)) in
  for l = 0 to 7 do
    ignore (GB.write gb mem (addr l) 8 (Int64.of_int l))
  done;
  let occ = ref 0 in
  for s = 0 to GB.shard_count gb - 1 do
    occ := !occ + GB.shard_occupancy gb s
  done;
  Alcotest.(check int) "occupancy totals the footprint" 8 !occ;
  for s = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "shard %d balanced" s)
      2
      (GB.shard_occupancy gb s)
  done;
  for l = 0 to 7 do
    let v, hit = GB.read gb mem (addr l) 8 in
    Alcotest.(check int64) "read back across shards" (Int64.of_int l) v;
    Alcotest.(check bool) "sharded hit" true hit
  done;
  ignore (GB.commit gb mem);
  for l = 0 to 7 do
    Alcotest.(check int64) "committed across shards" (Int64.of_int l)
      (Bytes.get_int64_le backing (addr l))
  done

let test_gb_line_mode () =
  let backing, mem = make_mem () in
  let gb = GB.create ~line_words:8 ~slots:256 ~temp_slots:8 () in
  (* one fully-marked line (bulk path) plus a partial line *)
  for w = 0 to 7 do
    ignore (GB.write gb mem (0x2000 + (8 * w)) 8 (Int64.of_int (100 + w)))
  done;
  ignore (GB.write gb mem 0x2100 8 9L);
  ignore (GB.write gb mem 0x2108 1 0xABL);
  let words = GB.commit gb mem in
  Alcotest.(check int) "word count independent of line mode" 10 words;
  for w = 0 to 7 do
    Alcotest.(check int64) "full line committed"
      (Int64.of_int (100 + w))
      (Bytes.get_int64_le backing (0x2000 + (8 * w)))
  done;
  Alcotest.(check int64) "partial word" 9L (Bytes.get_int64_le backing 0x2100);
  Alcotest.(check int64) "subword in line mode" 0xABL
    (Bytes.get_int64_le backing 0x2108);
  (* bulk validate still counts and attributes per word *)
  let gb2 = GB.create ~line_words:8 ~slots:256 ~temp_slots:8 () in
  for w = 0 to 7 do
    ignore (GB.read gb2 mem (0x3000 + (8 * w)) 8)
  done;
  Alcotest.(check int) "line validate word count" 8 (GB.validate gb2 mem);
  Bytes.set_int64_le backing 0x3020 99L;
  Alcotest.check_raises "line validate attributes the word"
    (GB.Invalid_read 0x3020) (fun () -> ignore (GB.validate gb2 mem))

(* The shard fast path (write hit through the per-shard last-slot
   cache) must not allocate: pin it with the minor-heap counter.  The
   slack covers the boxed floats the counter reads themselves cost. *)
let test_gb_shard_fastpath_no_alloc () =
  let _, mem = make_mem () in
  let gb = GB.create ~shards:4 ~slots:256 ~temp_slots:8 () in
  ignore (GB.write gb mem 0x100 8 42L);
  ignore (GB.write gb mem 0x100 8 42L);
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (GB.write gb mem 0x100 8 42L)
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "no allocation on the write-hit fast path (%.0f words)"
       (w1 -. w0))
    true
    (w1 -. w0 <= 16.0)

(* The shadow-model property again, across the resilience geometry:
   sharding, the spill tier, and line mode must be invisible to
   read/write/commit semantics. *)
let test_gb_model_geometry =
  QCheck.Test.make ~name:"global buffer vs shadow model (sharded/spill/line)"
    ~count:200
    QCheck.(
      pair
        (triple (oneofl [ 1; 2; 4; 8 ]) (oneofl [ 0; 16; 64 ]) (oneofl [ 1; 8 ]))
        (list (triple bool (int_range 0 500) small_int)))
    (fun ((shards, spill_slots, line_words), ops) ->
      let backing, mem = make_mem () in
      let gb =
        GB.create ~shards ~spill_slots ~line_words ~slots:128 ~temp_slots:8 ()
      in
      let shadow = Hashtbl.create 64 in
      let ok = ref true in
      (try
         List.iter
           (fun (is_write, slot, value) ->
             let addr = 0x1000 + (8 * slot) in
             if is_write then begin
               ignore (GB.write gb mem addr 8 (Int64.of_int value));
               Hashtbl.replace shadow addr (Int64.of_int value)
             end
             else begin
               let v, _ = GB.read gb mem addr 8 in
               let expect =
                 match Hashtbl.find_opt shadow addr with
                 | Some x -> x
                 | None -> Bytes.get_int64_le backing addr
               in
               if v <> expect then ok := false
             end)
           ops;
         ignore (GB.commit gb mem);
         Hashtbl.iter
           (fun addr v ->
             if Bytes.get_int64_le backing addr <> v then ok := false)
           shadow
       with GB.Overflow -> ());
      !ok)
  |> QCheck_alcotest.to_alcotest

(* --- local buffer ------------------------------------------------------- *)

let test_lb_frames_and_regs () =
  let lb = LB.create ~max_locals:16 in
  let f0 = LB.push_frame lb in
  LB.set_reg f0 lb 3 (LB.Vi 42L);
  Alcotest.(check bool) "read back" true (LB.get_reg f0 lb 3 = LB.Vi 42L);
  let f1 = LB.push_frame lb in
  Alcotest.(check int) "depth" 2 (LB.depth lb);
  Alcotest.(check bool) "top is new frame" true (LB.top lb == f1);
  Alcotest.(check bool) "bottom unchanged" true (LB.bottom lb == f0);
  LB.pop_frame lb;
  Alcotest.(check int) "popped" 1 (LB.depth lb)

let test_lb_offset_bounds () =
  let lb = LB.create ~max_locals:4 in
  let f = LB.push_frame lb in
  Alcotest.check_raises "offset out of range"
    (Invalid_argument "Local_buffer: register offset 4 out of range") (fun () ->
      LB.set_reg f lb 4 (LB.Vi 0L))

let test_lb_fork_regs_isolated () =
  let lb = LB.create ~max_locals:8 in
  let f = LB.push_frame lb in
  LB.set_fork_reg lb 2 (LB.Vi 10L);
  LB.set_reg f lb 2 (LB.Vi 99L);
  (* commit-time saves must not clobber fork-time predictions *)
  Alcotest.(check bool) "fork value intact" true (LB.get_fork_reg lb 2 = LB.Vi 10L)

let test_lb_stackvar_copy () =
  let backing = Bytes.make 64 '\000' in
  Bytes.set_int64_le backing 16 77L;
  let lb = LB.create ~max_locals:8 in
  LB.set_stack_range lb ~base:0 ~limit:64;
  let f = LB.push_frame lb in
  LB.save_stackvar lb f
    ~read_byte:(fun a -> Char.code (Bytes.get backing a))
    ~off:1 ~addr:16 ~size:8;
  (match LB.find_stackvar f 1 with
  | Some sv ->
    Alcotest.(check bool) "copied" true (sv.LB.sv_data <> None);
    Alcotest.(check int) "address recorded" 16 sv.LB.sv_spec_addr
  | None -> Alcotest.fail "stackvar not saved");
  (* an address outside the own stack is recorded in place, no copy *)
  LB.save_stackvar lb f
    ~read_byte:(fun a -> Char.code (Bytes.get backing a))
    ~off:2 ~addr:4096 ~size:8;
  match LB.find_stackvar f 2 with
  | Some sv -> Alcotest.(check bool) "no copy for foreign stack" true (sv.LB.sv_data = None)
  | None -> Alcotest.fail "stackvar not recorded"

let tests =
  [
    Alcotest.test_case "address space basics" `Quick test_address_space_basic;
    Alcotest.test_case "address space merging" `Quick test_address_space_merge;
    Alcotest.test_case "address space unregister" `Quick test_address_space_unregister;
    test_address_space_model;
    Alcotest.test_case "gb read-your-writes" `Quick test_gb_read_your_writes;
    Alcotest.test_case "gb fetch + hit" `Quick test_gb_read_from_memory;
    Alcotest.test_case "gb isolation until commit" `Quick
      test_gb_writes_not_visible_before_commit;
    Alcotest.test_case "gb validation" `Quick test_gb_validate;
    Alcotest.test_case "gb subword bytes" `Quick test_gb_subword;
    Alcotest.test_case "gb subword i32" `Quick test_gb_subword_i32;
    Alcotest.test_case "gb hash conflicts via temp" `Quick test_gb_hash_conflict_temp;
    Alcotest.test_case "gb overflow" `Quick test_gb_overflow;
    Alcotest.test_case "gb finalize" `Quick test_gb_finalize_reuse;
    Alcotest.test_case "gb whole-word marks" `Quick test_gb_wholeword_marks;
    Alcotest.test_case "gb temp prefix reuse" `Quick test_gb_temp_prefix_reuse;
    test_gb_model;
    Alcotest.test_case "gb spill tier absorbs conflicts" `Quick test_gb_spill_tier;
    Alcotest.test_case "gb spill tier exhaustion" `Quick test_gb_spill_exhaust;
    Alcotest.test_case "gb spill tier validates" `Quick test_gb_spill_validate;
    Alcotest.test_case "gb spill tier finalize" `Quick test_gb_spill_finalize_reuse;
    Alcotest.test_case "gb sharded maps" `Quick test_gb_shards;
    Alcotest.test_case "gb line-granular bulk paths" `Quick test_gb_line_mode;
    Alcotest.test_case "gb shard fast path allocation-free" `Quick
      test_gb_shard_fastpath_no_alloc;
    test_gb_model_geometry;
    Alcotest.test_case "lb frames" `Quick test_lb_frames_and_regs;
    Alcotest.test_case "lb bounds" `Quick test_lb_offset_bounds;
    Alcotest.test_case "lb fork regs isolated" `Quick test_lb_fork_regs_isolated;
    Alcotest.test_case "lb stackvar copies" `Quick test_lb_stackvar_copy;
  ]
