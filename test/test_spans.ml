(* Causal span timelines: the span tree folded from a hand-built
   trace, the critical-path tiling invariant, and the acceptance
   cross-check — on real benchmark traces the critical-path total
   equals the run's tn from Metrics.compute. *)

module Trace = Mutls_obs.Trace
module Spans = Mutls_obs.Spans

let rec_ ?(thread = 0) ?(rank = 0) ?(main = false) time event =
  { Trace.time; thread; rank; main; event }

(* A two-level speculation: main forks 1, 1 forks 2; 2 finishes early
   (retire < join), 1 is joined at its retire instant. *)
let hand_trace =
  [
    rec_ ~main:true 10.0 (Trace.Fork { child = 1; child_rank = 1; point = 0 });
    rec_ ~main:true ~rank:1 12.0 (Trace.Speculate { child_rank = 1; counter = 1 });
    rec_ ~thread:1 ~rank:1 20.0 (Trace.Fork { child = 2; child_rank = 2; point = 1 });
    rec_ ~thread:1 ~rank:2 22.0 (Trace.Speculate { child_rank = 2; counter = 2 });
    (* child 2 finishes early: retire strictly before its join *)
    rec_ ~thread:2 ~rank:2 40.0
      (Trace.Retire { committed = true; runtime = 18.0; stats = [] });
    rec_ ~thread:1 ~rank:1 45.0 (Trace.Join { child = 2; committed = true });
    (* thread 1 is joined blocked: retire at the join instant *)
    rec_ ~thread:1 ~rank:1 60.0
      (Trace.Retire { committed = true; runtime = 48.0; stats = [] });
    rec_ ~main:true 60.0 (Trace.Join { child = 1; committed = true });
    rec_ ~main:true 100.0 Trace.Run_end;
  ]

let test_tree_shape () =
  let t = Spans.of_records hand_trace in
  Alcotest.(check int) "three spans" 3 (List.length t.Spans.spans);
  Alcotest.(check int) "main id" 0 t.Spans.main_id;
  Alcotest.(check (float 0.0)) "runtime" 100.0 t.Spans.runtime;
  let s id =
    match Spans.find t id with
    | Some s -> s
    | None -> Alcotest.failf "span %d missing" id
  in
  let main = s 0 and one = s 1 and two = s 2 in
  Alcotest.(check (option int)) "main has no parent" None main.Spans.parent;
  Alcotest.(check (list int)) "main's children" [ 1 ] main.Spans.children;
  Alcotest.(check (option int)) "1's parent" (Some 0) one.Spans.parent;
  Alcotest.(check (list int)) "1's children" [ 2 ] one.Spans.children;
  Alcotest.(check (option int)) "2's parent" (Some 1) two.Spans.parent;
  Alcotest.(check (float 0.0)) "1 forked at" 10.0 one.Spans.fork_time;
  Alcotest.(check (float 0.0)) "1 started (retire - runtime)" 12.0
    one.Spans.start;
  Alcotest.(check (option (float 0.0))) "1 stopped" (Some 60.0) one.Spans.stop;
  Alcotest.(check (option (float 0.0))) "1 joined" (Some 60.0)
    one.Spans.join_time;
  Alcotest.(check bool) "1 committed" true one.Spans.committed;
  Alcotest.(check (option (float 0.0))) "2 stopped early" (Some 40.0)
    two.Spans.stop;
  Alcotest.(check (option (float 0.0))) "2 joined later" (Some 45.0)
    two.Spans.join_time

(* The walk descends into thread 1 (retire 60 >= join 60) but not into
   thread 2 (retire 40 < join 45: it finished early, so its parent's
   clock, not its own, carried the critical path). *)
let test_critical_path_descent () =
  let t = Spans.of_records hand_trace in
  let segs = Spans.critical_path t in
  Alcotest.(check (list int)) "segment threads" [ 0; 1; 0 ]
    (List.map (fun s -> s.Spans.seg_thread) segs);
  Alcotest.(check (float 1e-9)) "total = runtime" t.Spans.runtime
    (Spans.critical_path_total (Spans.critical_path t))

(* Rollbacks surface on the span and the walk never descends into an
   uncommitted child. *)
let test_rollback_span () =
  let t =
    Spans.of_records
      [
        rec_ ~main:true 5.0 (Trace.Fork { child = 1; child_rank = 1; point = 2 });
        rec_ ~main:true ~rank:1 6.0
          (Trace.Speculate { child_rank = 1; counter = 1 });
        rec_ ~thread:1 ~rank:1 30.0
          (Trace.Rollback { reason = Trace.Conflict; point = 2 });
        rec_ ~thread:1 ~rank:1 30.0
          (Trace.Retire { committed = false; runtime = 24.0; stats = [] });
        rec_ ~main:true 30.0 (Trace.Join { child = 1; committed = false });
        rec_ ~main:true 80.0 Trace.Run_end;
      ]
  in
  (match Spans.find t 1 with
  | Some s ->
    Alcotest.(check bool) "not committed" false s.Spans.committed;
    Alcotest.(check bool) "conflict recorded" true
      (s.Spans.rollback_reason = Some Trace.Conflict)
  | None -> Alcotest.fail "span 1 missing");
  Alcotest.(check (list int)) "path stays on main" [ 0 ]
    (List.map (fun s -> s.Spans.seg_thread) (Spans.critical_path t));
  Alcotest.(check (float 1e-9)) "total = runtime" 80.0
    (Spans.critical_path_total (Spans.critical_path t))

(* --- cross-checks on real traces ----------------------------------------- *)

let run_traced ?(ncpus = 8) name =
  let w = Mutls.Workloads.find name in
  let m = Mutls.compile Mutls.C (w.Mutls.Workloads.c_source ()) in
  let tm = Mutls.speculate m in
  let records = ref [] in
  let sink =
    {
      Trace.enabled = true;
      emit = (fun r -> records := r :: !records);
      close = (fun () -> ());
    }
  in
  let cfg =
    {
      Mutls.Config.default with
      ncpus;
      trace_sink = sink;
      telemetry = Mutls.Telemetry.create ();
    }
  in
  let tls = Mutls.run_tls cfg tm in
  (tls, List.rev !records)

(* The acceptance bar: the critical path through the span DAG tiles
   [0, tn] exactly, so its total equals the tn Metrics.compute reports,
   on every benchmark tried. *)
let test_critical_path_equals_tn () =
  List.iter
    (fun name ->
      let tls, records = run_traced name in
      let t = Spans.of_records records in
      let tn = tls.Mutls.Eval.tfinish in
      Alcotest.(check (float 1e-6))
        (name ^ ": runtime = tn") tn t.Spans.runtime;
      Alcotest.(check (float 1e-6))
        (name ^ ": critical path total = tn")
        tn
        (Spans.critical_path_total (Spans.critical_path t));
      (* segments are contiguous and monotone: each starts where the
         previous ended, the first at 0, the last at tn *)
      let segs = Spans.critical_path t in
      let stop =
        List.fold_left
          (fun cursor s ->
            Alcotest.(check (float 1e-6))
              (name ^ ": contiguous segment") cursor s.Spans.seg_from;
            Alcotest.(check bool) (name ^ ": forward segment") true
              (s.Spans.seg_to >= s.Spans.seg_from);
            s.Spans.seg_to)
          0.0 segs
      in
      Alcotest.(check (float 1e-6)) (name ^ ": path ends at tn") tn stop)
    [ "3x+1"; "mandelbrot"; "md"; "bh"; "fft"; "matmult"; "nqueen"; "tsp" ]

(* Span verdicts agree with the runtime's own retirement accounting. *)
let test_spans_match_stats () =
  let tls, records = run_traced "fft" in
  let t = Spans.of_records records in
  let retired = tls.Mutls.Eval.tretired in
  let spec_spans =
    List.filter (fun s -> s.Spans.parent <> None) t.Spans.spans
  in
  Alcotest.(check int) "one span per retired thread" (List.length retired)
    (List.length spec_spans);
  let committed l = List.length (List.filter (fun x -> x) l) in
  Alcotest.(check int) "committed counts agree"
    (committed
       (List.map
          (fun r -> r.Mutls_runtime.Thread_manager.r_committed)
          retired))
    (committed (List.map (fun s -> s.Spans.committed) spec_spans));
  (* per-span runtimes agree with the retired records *)
  let span_runtime s =
    match s.Spans.stop with
    | Some stop -> stop -. s.Spans.start
    | None -> 0.0
  in
  let sum l = List.fold_left ( +. ) 0.0 l in
  Alcotest.(check (float 1e-6))
    "summed speculative runtimes agree"
    (sum
       (List.map
          (fun r -> r.Mutls_runtime.Thread_manager.r_runtime)
          retired))
    (sum (List.map span_runtime spec_spans))

let tests =
  [
    Alcotest.test_case "span tree shape" `Quick test_tree_shape;
    Alcotest.test_case "critical-path descent rule" `Quick
      test_critical_path_descent;
    Alcotest.test_case "rollback span" `Quick test_rollback_span;
    Alcotest.test_case "critical path total = tn" `Quick
      test_critical_path_equals_tn;
    Alcotest.test_case "spans match retirement stats" `Quick
      test_spans_match_stats;
  ]
