(* Always-on telemetry registry: log₂ bucket boundaries, the
   no-allocation recording guarantee, kind-clash detection, and a
   golden Prometheus text exposition. *)

module T = Mutls_obs.Telemetry

(* --- bucket boundaries --------------------------------------------------- *)

(* Bucket i's upper bound is 2^i: values <= 1 land in bucket 0, a value
   v > 1 in the bucket whose bound is the smallest power of two >= v.
   OCaml's max_int (2^62 - 1) must land in the last finite bucket. *)
let test_bucket_boundaries () =
  let check v want =
    Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) want (T.bucket_of v)
  in
  check 0 0;
  check 1 0;
  check 2 1;
  check 3 2;
  check 4 2;
  check 5 3;
  check 8 3;
  check 9 4;
  check 1024 10;
  check 1025 11;
  check max_int 62;
  (* exact powers of two sit at their own boundary *)
  for i = 1 to 61 do
    check (1 lsl i) i
  done;
  Alcotest.(check int) "64 buckets" 64 T.n_buckets;
  Alcotest.(check (float 0.0)) "bucket 0 le" 1.0 (T.bucket_upper 0);
  Alcotest.(check (float 0.0)) "bucket 10 le" 1024.0 (T.bucket_upper 10);
  Alcotest.(check bool) "last bucket is +Inf" true
    (T.bucket_upper (T.n_buckets - 1) = infinity);
  (* every value files strictly within its bucket's bounds *)
  List.iter
    (fun v ->
      let i = T.bucket_of v in
      Alcotest.(check bool)
        (Printf.sprintf "%d <= le(%d)" v i)
        true
        (float_of_int v <= T.bucket_upper i);
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "%d > le(%d)" v (i - 1))
          true
          (float_of_int v > T.bucket_upper (i - 1)))
    [ 0; 1; 2; 3; 7; 100; 4097; max_int ]

(* --- recording ----------------------------------------------------------- *)

let test_counters_gauges_histograms () =
  let reg = T.create () in
  let c = T.counter reg "c_total" in
  T.incr c;
  T.add c 41;
  Alcotest.(check int) "counter" 42 (T.counter_value c);
  (* get-or-create returns the same cell *)
  let c' = T.counter reg "c_total" in
  T.incr c';
  Alcotest.(check int) "aliased handle" 43 (T.counter_value c);
  (* distinct label sets are distinct cells *)
  let ca = T.counter ~labels:[ ("reason", "a") ] reg "d_total" in
  let cb = T.counter ~labels:[ ("reason", "b") ] reg "d_total" in
  T.incr ca;
  Alcotest.(check int) "labelled cells independent" 0 (T.counter_value cb);
  let g = T.gauge reg "g" in
  T.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge" 2.5 (T.gauge_value g);
  let h = T.histogram reg "h" in
  List.iter (T.observe h) [ 0; 1; 2; 3; 8 ];
  (* max_int lands in the last finite bucket; its sum would overflow
     the exact int accumulator, so check it on a histogram of its own *)
  let hmax = T.histogram reg "hmax" in
  T.observe hmax max_int;
  let value name =
    List.find_map
      (fun m -> if m.T.m_name = name then Some m.T.m_value else None)
      (T.snapshot reg)
  in
  (match value "h" with
  | Some (T.Histogram { buckets; sum; count }) ->
    Alcotest.(check int) "count" 5 count;
    Alcotest.(check (float 0.0)) "sum" 14.0 sum;
    Alcotest.(check int) "bucket 0" 2 buckets.(0);
    Alcotest.(check int) "bucket 1" 1 buckets.(1);
    Alcotest.(check int) "bucket 2" 1 buckets.(2);
    Alcotest.(check int) "bucket 3" 1 buckets.(3)
  | _ -> Alcotest.fail "histogram missing from snapshot");
  match value "hmax" with
  | Some (T.Histogram { buckets; count; _ }) ->
    Alcotest.(check int) "hmax count" 1 count;
    Alcotest.(check int) "bucket 62 (max_int)" 1 buckets.(62);
    Alcotest.(check int) "+Inf bucket unused" 0 buckets.(T.n_buckets - 1)
  | _ -> Alcotest.fail "hmax missing from snapshot"

let test_kind_clash () =
  let reg = T.create () in
  ignore (T.counter reg "m");
  Alcotest.check_raises "gauge on a counter name"
    (Invalid_argument "Telemetry: \"m\" already registered as a counter")
    (fun () -> ignore (T.gauge reg "m"))

let test_reset () =
  let reg = T.create () in
  let c = T.counter reg "c" in
  let h = T.histogram reg "h" in
  T.add c 7;
  T.observe h 100;
  T.reset reg;
  Alcotest.(check int) "counter zeroed" 0 (T.counter_value c);
  match
    List.find_map
      (fun m -> if m.T.m_name = "h" then Some m.T.m_value else None)
      (T.snapshot reg)
  with
  | Some (T.Histogram { count; sum; _ }) ->
    Alcotest.(check int) "histogram count zeroed" 0 count;
    Alcotest.(check (float 0.0)) "histogram sum zeroed" 0.0 sum
  | _ -> Alcotest.fail "histogram missing after reset"

(* The recording hot path must not allocate: handles are pre-resolved,
   counters/gauges mutate a single field, and a histogram observation
   is shifts plus an array store.  100k operations with any per-op
   allocation would move minor_words by >= 200k; the slack of 256
   words absorbs the boxed floats Gc.minor_words itself returns. *)
let test_no_allocation () =
  let reg = T.create () in
  let c = T.counter reg "c" in
  let g = T.gauge reg "g" in
  let h = T.histogram reg "h" in
  (* warm up: first calls may trigger lazy initialisation *)
  T.incr c;
  T.set g 1.0;
  T.observe h 1;
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    T.incr c;
    T.add c 2;
    T.set g 3.5;
    T.observe h i
  done;
  let after = Gc.minor_words () in
  let delta = after -. before in
  if delta > 256.0 then
    Alcotest.failf "recording allocated %.0f minor words over 100k ops" delta

(* --- exposition ---------------------------------------------------------- *)

(* Byte-exact Prometheus text exposition 0.0.4 of a known registry:
   HELP/TYPE headers once per family (shared across label children),
   escaped label values, cumulative histogram buckets with the empty
   tail collapsed, and name-then-labels ordering. *)
let test_prometheus_golden () =
  let reg = T.create () in
  let cm = T.counter ~help:"fork requests refused"
      ~labels:[ ("reason", "model") ] reg "test_denied_total" in
  let cp = T.counter ~labels:[ ("reason", "policy") ] reg "test_denied_total" in
  T.incr cm;
  T.incr cm;
  T.incr cp;
  let g = T.gauge ~help:"live threads" reg "test_live" in
  T.set g 2.5;
  let c = T.counter ~help:"requests served" reg "test_requests_total" in
  T.add c 3;
  let e = T.counter ~help:"escape \\ these"
      ~labels:[ ("path", "a\"b\\c\nd") ] reg "test_escapes_total" in
  T.incr e;
  let h = T.histogram ~help:"words per op" reg "test_words" in
  List.iter (T.observe h) [ 0; 1; 2; 3; 8 ];
  let expected =
    String.concat "\n"
      [
        "# HELP test_denied_total fork requests refused";
        "# TYPE test_denied_total counter";
        "test_denied_total{reason=\"model\"} 2";
        "test_denied_total{reason=\"policy\"} 1";
        "# HELP test_escapes_total escape \\\\ these";
        "# TYPE test_escapes_total counter";
        "test_escapes_total{path=\"a\\\"b\\\\c\\nd\"} 1";
        "# HELP test_live live threads";
        "# TYPE test_live gauge";
        "test_live 2.5";
        "# HELP test_requests_total requests served";
        "# TYPE test_requests_total counter";
        "test_requests_total 3";
        "# HELP test_words words per op";
        "# TYPE test_words histogram";
        "test_words_bucket{le=\"1\"} 2";
        "test_words_bucket{le=\"2\"} 3";
        "test_words_bucket{le=\"4\"} 4";
        "test_words_bucket{le=\"8\"} 5";
        "test_words_bucket{le=\"+Inf\"} 5";
        "test_words_sum 14";
        "test_words_count 5";
        "";
      ]
  in
  Alcotest.(check string) "golden exposition" expected
    (T.to_prometheus (T.snapshot reg))

(* help attaches to the family whichever labelled handle supplies it *)
let test_family_help () =
  let reg = T.create () in
  ignore (T.counter ~labels:[ ("reason", "a") ] reg "f_total");
  ignore (T.counter ~help:"late help" ~labels:[ ("reason", "b") ] reg "f_total");
  let text = T.to_prometheus (T.snapshot reg) in
  Alcotest.(check bool) "HELP present" true
    (Astring_contains.contains text "# HELP f_total late help")

let test_json_roundtrip_shape () =
  let reg = T.create () in
  T.add (T.counter reg "c") 5;
  T.observe (T.histogram reg "h") 3;
  match T.to_json (T.snapshot reg) with
  | Mutls_obs.Json.List [ cj; hj ] ->
    Alcotest.(check (option string)) "counter name" (Some "c")
      (Option.bind (Mutls_obs.Json.member "name" cj) Mutls_obs.Json.to_str);
    Alcotest.(check (option string)) "histogram type" (Some "histogram")
      (Option.bind (Mutls_obs.Json.member "type" hj) Mutls_obs.Json.to_str)
  | _ -> Alcotest.fail "expected a two-element JSON list"

let test_disabled () =
  Alcotest.(check bool) "disabled registry" false (T.enabled T.disabled);
  Alcotest.(check bool) "fresh registry enabled" true (T.enabled (T.create ()))

let tests =
  [
    Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
    Alcotest.test_case "counters, gauges, histograms" `Quick
      test_counters_gauges_histograms;
    Alcotest.test_case "kind clash rejected" `Quick test_kind_clash;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "recording does not allocate" `Quick test_no_allocation;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "family-level help" `Quick test_family_help;
    Alcotest.test_case "json shape" `Quick test_json_roundtrip_shape;
    Alcotest.test_case "disabled registry" `Quick test_disabled;
  ]
